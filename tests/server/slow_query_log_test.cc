// The self-hosted slow-query log: slow / sampled queries become rows in
// `__scuba_queries`, queryable through the aggregator like any table; the
// self-amplification guards keep `__scuba*` queries out of the log, the
// per-table histograms, and the sampler; errors and unavailability are
// attributed to specific leaves in the profile.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/stats_exporter.h"
#include "server/aggregator.h"
#include "test_util.h"

namespace scuba {
namespace {

using testing_util::MakeRows;
using testing_util::ShmNamespace;
using testing_util::TempDir;

class SlowQueryLogTest : public ::testing::Test {
 protected:
  SlowQueryLogTest() : ns_("slowlog"), dir_("slowlog") {}

  void StartLeaves(size_t n) {
    for (size_t i = 0; i < n; ++i) {
      LeafServerConfig config;
      config.leaf_id = static_cast<uint32_t>(i);
      config.namespace_prefix = ns_.prefix();
      config.backup_dir = dir_.path() + "/leaf_" + std::to_string(i);
      config.self_stats_enabled = true;
      // Tests drive export cycles; the periodic thread would add noise.
      config.self_stats_period_millis = 3600 * 1000;
      leaves_.push_back(std::make_unique<LeafServer>(config));
      ASSERT_TRUE(leaves_.back()->Start().ok());
      aggregator_.AddLeaf(leaves_.back().get());
      ASSERT_TRUE(
          leaves_.back()->AddRows("events", MakeRows(200, 1000 + i)).ok());
    }
  }

  Query CountQuery(const std::string& table) {
    Query q;
    q.table = table;
    q.aggregates = {Count()};
    return q;
  }

  // Rows currently in `__scuba_queries` (across all leaves) whose `kind`
  // matches, counted through the aggregator — the log is itself data.
  double CountLogRows(const std::string& kind = "") {
    Query q = CountQuery(obs::kQueriesTableName);
    if (!kind.empty()) {
      q.predicates.push_back({"kind", CompareOp::kEq, Value(kind)});
    }
    auto result = aggregator_.Execute(q);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (!result.ok()) return -1.0;
    auto rows = result->Finalize({Count()});
    return rows.empty() ? 0.0 : rows[0].aggregates[0];
  }

  ShmNamespace ns_;
  TempDir dir_;
  std::vector<std::unique_ptr<LeafServer>> leaves_;
  Aggregator aggregator_;
};

TEST_F(SlowQueryLogTest, SlowQueryRowQueryableThroughAggregator) {
  StartLeaves(2);
  aggregator_.SetSlowQueryLog(/*threshold_micros=*/1, /*sample_every_n=*/0);

  ASSERT_EQ(CountLogRows(), 0.0);
  auto result = aggregator_.Execute(CountQuery("events"));
  ASSERT_TRUE(result.ok());

  EXPECT_EQ(CountLogRows("slow"), 1.0);
  // The row rode the first live leaf's exporter.
  EXPECT_EQ(leaves_[0]->stats_exporter()->query_rows(), 1u);

  // The row carries the fingerprint and profile counters as columns.
  Query q = CountQuery(obs::kQueriesTableName);
  q.predicates.push_back(
      {"table", CompareOp::kEq, Value(std::string("events"))});
  q.group_by = {"fingerprint"};
  auto log = aggregator_.Execute(q);
  ASSERT_TRUE(log.ok());
  auto rows = log->Finalize({Count()});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(std::get<std::string>(rows[0].group_key[0]),
            CountQuery("events").Fingerprint());
}

TEST_F(SlowQueryLogTest, SampledQueriesGetKindSample) {
  StartLeaves(2);
  // No threshold; every 2nd non-system query sampled (first included).
  aggregator_.SetSlowQueryLog(/*threshold_micros=*/0, /*sample_every_n=*/2);

  ASSERT_TRUE(aggregator_.Execute(CountQuery("events")).ok());  // sampled
  ASSERT_TRUE(aggregator_.Execute(CountQuery("events")).ok());  // skipped
  ASSERT_TRUE(aggregator_.Execute(CountQuery("events")).ok());  // sampled

  EXPECT_EQ(CountLogRows("sample"), 2.0);
  EXPECT_EQ(CountLogRows("slow"), 0.0);
}

TEST_F(SlowQueryLogTest, SystemTableQueriesNeverLoggedOrSampled) {
  StartLeaves(2);
  aggregator_.SetSlowQueryLog(/*threshold_micros=*/1, /*sample_every_n=*/1);

  // Hammer the system tables: none of these may produce a log row, or the
  // log would feed itself.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(aggregator_.Execute(CountQuery(obs::kQueriesTableName)).ok());
    ASSERT_TRUE(aggregator_.Execute(CountQuery(obs::kStatsTableName)).ok());
  }
  EXPECT_EQ(leaves_[0]->stats_exporter()->query_rows(), 0u);
  EXPECT_EQ(CountLogRows(), 0.0);

  // System tables get no per-table latency histogram either.
  auto snapshot = obs::MetricsRegistry::Global().TakeRegistrySnapshot();
  for (const auto& [name, hist] : snapshot.histograms) {
    EXPECT_EQ(name.find("query_latency_micros.__scuba"), std::string::npos)
        << name;
  }

  // A normal query is still logged.
  ASSERT_TRUE(aggregator_.Execute(CountQuery("events")).ok());
  EXPECT_EQ(leaves_[0]->stats_exporter()->query_rows(), 1u);
}

// The PR-4-style bounded-width regression: 100 cycles of (user query +
// log inspection + export cycle) grow the log by exactly one row per user
// query — reading the log, and exporting stats, never amplifies it.
TEST_F(SlowQueryLogTest, HundredCyclesBoundedWidth) {
  StartLeaves(2);
  aggregator_.SetSlowQueryLog(/*threshold_micros=*/1, /*sample_every_n=*/0);

  for (int cycle = 0; cycle < 100; ++cycle) {
    ASSERT_TRUE(aggregator_.Execute(CountQuery("events")).ok());
    ASSERT_GE(CountLogRows(), 0.0);  // reading the log is itself a query
    if (cycle % 10 == 0) {
      ASSERT_TRUE(leaves_[0]->stats_exporter()->ExportOnce().ok());
    }
  }
  EXPECT_EQ(CountLogRows(), 100.0);
  EXPECT_EQ(leaves_[0]->stats_exporter()->query_rows(), 100u);
}

TEST_F(SlowQueryLogTest, ErrorAttributedToOffendingLeaf) {
  StartLeaves(2);
  // Leaf 0 holds numeric payloads, leaf 1 strings: Sum("payload") fails
  // only on leaf 1, and the error must say so.
  std::vector<Row> good, bad;
  for (int i = 0; i < 10; ++i) {
    Row g;
    g.SetTime(2000 + i);
    g.Set("payload", 1.5);
    good.push_back(g);
    Row b;
    b.SetTime(2000 + i);
    b.Set("payload", std::string("oops"));
    bad.push_back(b);
  }
  ASSERT_TRUE(leaves_[0]->AddRows("mixed", good).ok());
  ASSERT_TRUE(leaves_[1]->AddRows("mixed", bad).ok());

  Query q;
  q.table = "mixed";
  q.aggregates = {Sum("payload")};

  for (bool parallel : {false, true}) {
    aggregator_.SetParallelFanout(parallel);
    Status status = aggregator_.Execute(q).status();
    ASSERT_FALSE(status.ok()) << (parallel ? "parallel" : "sequential");
    EXPECT_NE(status.message().find("leaf 1:"), std::string::npos)
        << (parallel ? "parallel" : "sequential") << ": "
        << status.ToString();
  }
}

TEST_F(SlowQueryLogTest, UnavailableLeafRecordedInProfile) {
  StartLeaves(3);
  ShutdownStats stats;
  ASSERT_TRUE(leaves_[1]->ShutdownToSharedMemory(&stats).ok());

  for (bool parallel : {false, true}) {
    aggregator_.SetParallelFanout(parallel);
    auto result = aggregator_.Execute(CountQuery("events"));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->profile().leaves_total, 3u);
    EXPECT_EQ(result->profile().leaves_responded, 2u);
    ASSERT_EQ(result->profile().unavailable_leaves.size(), 1u);
    EXPECT_EQ(result->profile().unavailable_leaves[0], 1u);
  }
}

TEST_F(SlowQueryLogTest, ParallelFanoutRecordsQueueWait) {
  StartLeaves(4);
  aggregator_.SetParallelFanout(true);

  auto before = obs::MetricsRegistry::Global()
                    .GetHistogram("scuba.server.aggregator."
                                  "fanout_queue_wait_micros")
                    ->TakeSnapshot();
  auto result = aggregator_.Execute(CountQuery("events"));
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->profile().fanout_queue_wait_micros, 0);
  auto after = obs::MetricsRegistry::Global()
                   .GetHistogram("scuba.server.aggregator."
                                 "fanout_queue_wait_micros")
                   ->TakeSnapshot();
  // One sample per responding leaf.
  EXPECT_EQ(after.count - before.count, 4u);
}

}  // namespace
}  // namespace scuba
