#include "server/leaf_server.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace scuba {
namespace {

using testing_util::MakeRows;
using testing_util::ShmNamespace;
using testing_util::TempDir;

LeafServerConfig MakeConfig(const ShmNamespace& ns, const TempDir& dir,
                            uint32_t leaf_id = 0) {
  LeafServerConfig config;
  config.leaf_id = leaf_id;
  config.namespace_prefix = ns.prefix();
  config.backup_dir = dir.path() + "/leaf_" + std::to_string(leaf_id);
  return config;
}

Query CountQuery(const std::string& table) {
  Query q;
  q.table = table;
  q.aggregates = {Count()};
  return q;
}

double CountOf(const StatusOr<QueryResult>& result) {
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  auto rows = result->Finalize({Count()});
  return rows.empty() ? 0.0 : rows[0].aggregates[0];
}

TEST(LeafServerTest, StartFreshAndServe) {
  ShmNamespace ns("ls1");
  TempDir dir("ls1");
  LeafServer leaf(MakeConfig(ns, dir));
  auto started = leaf.Start();
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  EXPECT_EQ(started->source, RecoverySource::kFresh);
  EXPECT_TRUE(leaf.IsAlive());

  ASSERT_TRUE(leaf.AddRows("events", MakeRows(100)).ok());
  EXPECT_EQ(leaf.RowCount(), 100u);
  EXPECT_EQ(CountOf(leaf.ExecuteQuery(CountQuery("events"))), 100.0);
}

TEST(LeafServerTest, DoubleStartFails) {
  ShmNamespace ns("ls2");
  TempDir dir("ls2");
  LeafServer leaf(MakeConfig(ns, dir));
  ASSERT_TRUE(leaf.Start().ok());
  EXPECT_TRUE(leaf.Start().status().IsFailedPrecondition());
}

TEST(LeafServerTest, OpsRejectedBeforeStart) {
  ShmNamespace ns("ls3");
  TempDir dir("ls3");
  LeafServer leaf(MakeConfig(ns, dir));
  EXPECT_TRUE(leaf.AddRows("t", MakeRows(1)).IsUnavailable());
  EXPECT_TRUE(leaf.ExecuteQuery(CountQuery("t")).status().IsUnavailable());
  EXPECT_EQ(leaf.ExpireData(), 0u);
}

TEST(LeafServerTest, QueryUnknownTableIsEmptyNotError) {
  ShmNamespace ns("ls4");
  TempDir dir("ls4");
  LeafServer leaf(MakeConfig(ns, dir));
  ASSERT_TRUE(leaf.Start().ok());
  auto result = leaf.ExecuteQuery(CountQuery("not_here"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_groups(), 0u);
  EXPECT_EQ(result->leaves_responded, 1u);
}

TEST(LeafServerTest, ShmRestartCycle) {
  ShmNamespace ns("ls5");
  TempDir dir("ls5");
  {
    LeafServer leaf(MakeConfig(ns, dir));
    ASSERT_TRUE(leaf.Start().ok());
    ASSERT_TRUE(leaf.AddRows("events", MakeRows(500)).ok());
    ASSERT_TRUE(leaf.AddRows("errors", MakeRows(50)).ok());
    ShutdownStats stats;
    ASSERT_TRUE(leaf.ShutdownToSharedMemory(&stats).ok());
    EXPECT_EQ(leaf.state(), LeafState::kExit);
    EXPECT_EQ(stats.tables_copied, 2u);
    // Post-shutdown: nothing accepted.
    EXPECT_TRUE(leaf.AddRows("events", MakeRows(1)).IsUnavailable());
  }
  // "New binary" for the same leaf id.
  LeafServer fresh(MakeConfig(ns, dir));
  auto started = fresh.Start();
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  EXPECT_EQ(started->source, RecoverySource::kSharedMemory);
  EXPECT_EQ(fresh.RowCount(), 550u);
  EXPECT_EQ(CountOf(fresh.ExecuteQuery(CountQuery("events"))), 500.0);
  EXPECT_EQ(CountOf(fresh.ExecuteQuery(CountQuery("errors"))), 50.0);
}

TEST(LeafServerTest, CrashRecoversFromDisk) {
  ShmNamespace ns("ls6");
  TempDir dir("ls6");
  {
    LeafServer leaf(MakeConfig(ns, dir));
    ASSERT_TRUE(leaf.Start().ok());
    ASSERT_TRUE(leaf.AddRows("events", MakeRows(300)).ok());
    leaf.Crash();  // no shm handoff, no valid bit
  }
  LeafServer fresh(MakeConfig(ns, dir));
  auto started = fresh.Start();
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  EXPECT_EQ(started->source, RecoverySource::kDisk);
  // All rows were backed up before insertion, so nothing is lost here.
  EXPECT_EQ(fresh.RowCount(), 300u);
}

TEST(LeafServerTest, MemoryRecoveryDisabledUsesDisk) {
  ShmNamespace ns("ls7");
  TempDir dir("ls7");
  {
    LeafServer leaf(MakeConfig(ns, dir));
    ASSERT_TRUE(leaf.Start().ok());
    ASSERT_TRUE(leaf.AddRows("events", MakeRows(200)).ok());
    ShutdownStats stats;
    ASSERT_TRUE(leaf.ShutdownToSharedMemory(&stats).ok());
  }
  LeafServerConfig config = MakeConfig(ns, dir);
  config.memory_recovery_enabled = false;
  LeafServer fresh(config);
  auto started = fresh.Start();
  ASSERT_TRUE(started.ok());
  EXPECT_EQ(started->source, RecoverySource::kDisk);
  EXPECT_EQ(fresh.RowCount(), 200u);
}

TEST(LeafServerTest, ExpireDataHonorsLimits) {
  ShmNamespace ns("ls8");
  TempDir dir("ls8");
  LeafServerConfig config = MakeConfig(ns, dir);
  config.default_table_limits.max_age_seconds = 60;
  SimulatedClock clock(2000 * 1000000ll);  // unix time 2000
  config.clock = &clock;
  LeafServer leaf(config);
  ASSERT_TRUE(leaf.Start().ok());

  // Rows at time ~1000: already older than 60s at clock time 2000.
  ASSERT_TRUE(leaf.AddRows("events", MakeRows(100, 1000)).ok());
  // Must be sealed into a block before whole-block expiry can drop it.
  clock.AdvanceMicros(1000000);
  // Force a seal by shutting down? No: use many rows instead. Simpler:
  // expire only drops sealed blocks; buffered rows stay.
  EXPECT_EQ(leaf.ExpireData(), 0u);

  // Fill enough rows to seal a block, then expire it.
  LeafServerConfig config2 = MakeConfig(ns, dir, 1);
  config2.default_table_limits.max_age_seconds = 60;
  config2.clock = &clock;
  LeafServer leaf2(config2);
  ASSERT_TRUE(leaf2.Start().ok());
  for (int i = 0; i < 70; ++i) {
    ASSERT_TRUE(leaf2.AddRows("events", MakeRows(1000, 1000)).ok());
  }
  ASSERT_GT(leaf2.ExpireData(), 0u);
}

TEST(LeafServerTest, FreeMemoryReporting) {
  ShmNamespace ns("ls9");
  TempDir dir("ls9");
  LeafServerConfig config = MakeConfig(ns, dir);
  config.memory_capacity_bytes = 1 << 20;
  LeafServer leaf(config);
  ASSERT_TRUE(leaf.Start().ok());
  uint64_t free_before = leaf.FreeMemoryBytes();
  EXPECT_EQ(free_before, 1u << 20);
  ASSERT_TRUE(leaf.AddRows("events", MakeRows(1000)).ok());
  EXPECT_LT(leaf.FreeMemoryBytes(), free_before);
  EXPECT_GT(leaf.MemoryUsedBytes(), 0u);
}

TEST(LeafServerTest, RestartPreservesBackupForLaterCrash) {
  // shm restart -> more data -> crash -> disk recovery sees ALL rows.
  ShmNamespace ns("ls10");
  TempDir dir("ls10");
  {
    LeafServer leaf(MakeConfig(ns, dir));
    ASSERT_TRUE(leaf.Start().ok());
    ASSERT_TRUE(leaf.AddRows("events", MakeRows(100, 1000)).ok());
    ShutdownStats stats;
    ASSERT_TRUE(leaf.ShutdownToSharedMemory(&stats).ok());
  }
  {
    LeafServer leaf(MakeConfig(ns, dir));
    ASSERT_TRUE(leaf.Start().ok());
    ASSERT_TRUE(leaf.AddRows("events", MakeRows(50, 2000)).ok());
    leaf.Crash();
  }
  LeafServer leaf(MakeConfig(ns, dir));
  auto started = leaf.Start();
  ASSERT_TRUE(started.ok());
  EXPECT_EQ(started->source, RecoverySource::kDisk);
  EXPECT_EQ(leaf.RowCount(), 150u);
}

TEST(LeafServerTest, NoBackupDirStillWorksViaShm) {
  ShmNamespace ns("ls11");
  LeafServerConfig config;
  config.leaf_id = 0;
  config.namespace_prefix = ns.prefix();
  config.backup_dir = "";  // memory-only leaf
  {
    LeafServer leaf(config);
    ASSERT_TRUE(leaf.Start().ok());
    ASSERT_TRUE(leaf.AddRows("events", MakeRows(25)).ok());
    ShutdownStats stats;
    ASSERT_TRUE(leaf.ShutdownToSharedMemory(&stats).ok());
  }
  LeafServer fresh(config);
  auto started = fresh.Start();
  ASSERT_TRUE(started.ok());
  EXPECT_EQ(started->source, RecoverySource::kSharedMemory);
  EXPECT_EQ(fresh.RowCount(), 25u);
}

}  // namespace
}  // namespace scuba
