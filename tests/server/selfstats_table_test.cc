#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "disk/file.h"
#include "obs/stats_exporter.h"
#include "server/leaf_server.h"
#include "test_util.h"

namespace scuba {
namespace {

using testing_util::MakeRows;
using testing_util::ShmNamespace;
using testing_util::TempDir;

class SelfStatsTableTest : public ::testing::Test {
 protected:
  SelfStatsTableTest() : ns_("selfstats"), dir_("selfstats") {}

  LeafServerConfig MakeConfig(uint32_t leaf_id = 0) {
    LeafServerConfig config;
    config.leaf_id = leaf_id;
    config.namespace_prefix = ns_.prefix();
    config.backup_dir = dir_.path();
    config.self_stats_enabled = true;
    // Effectively disable the periodic thread: tests drive cycles via
    // ExportOnce() so row counts are deterministic.
    config.self_stats_period_millis = 3600 * 1000;
    return config;
  }

  static Query CountStatsQuery() {
    Query q;
    q.table = obs::kStatsTableName;
    q.aggregates = {Count()};
    return q;
  }

  static Query RestartRowsByGeneration() {
    Query q = CountStatsQuery();
    q.predicates.push_back(
        {"kind", CompareOp::kEq, Value(std::string("restart"))});
    q.group_by = {"generation"};
    return q;
  }

  ShmNamespace ns_;
  TempDir dir_;
};

TEST_F(SelfStatsTableTest, ExternalIngestIntoReservedNamespaceRejected) {
  LeafServer leaf(MakeConfig());
  ASSERT_TRUE(leaf.Start().ok());
  EXPECT_TRUE(
      leaf.AddRows("__scuba_stats", MakeRows(4)).IsInvalidArgument());
  EXPECT_TRUE(
      leaf.AddRows("__scuba_anything", MakeRows(4)).IsInvalidArgument());
  // Normal tables are unaffected.
  EXPECT_TRUE(leaf.AddRows("requests", MakeRows(4)).ok());
}

TEST_F(SelfStatsTableTest, ExporterFillsQueryableSystemTable) {
  LeafServer leaf(MakeConfig());
  ASSERT_TRUE(leaf.Start().ok());
  ASSERT_NE(leaf.stats_exporter(), nullptr);

  // Real ingestion moves the server metrics; the next cycle exports them.
  ASSERT_TRUE(leaf.AddRows("requests", MakeRows(100)).ok());
  ASSERT_TRUE(leaf.stats_exporter()->ExportOnce().ok());

  auto result = leaf.ExecuteQuery(CountStatsQuery());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto rows = result->Finalize({Count()});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_GT(rows[0].aggregates[0], 0.0);

  // The recovery restart-history row is present from Start().
  auto restarts = leaf.ExecuteQuery(RestartRowsByGeneration());
  ASSERT_TRUE(restarts.ok());
  EXPECT_GE(restarts->Finalize({Count()}).size(), 1u);
}

TEST_F(SelfStatsTableTest, SystemTableHasNoDiskBackup) {
  LeafServer leaf(MakeConfig());
  ASSERT_TRUE(leaf.Start().ok());
  ASSERT_TRUE(leaf.AddRows("requests", MakeRows(50)).ok());
  ASSERT_TRUE(leaf.stats_exporter()->ExportOnce().ok());

  ShutdownStats stats;
  ASSERT_TRUE(leaf.ShutdownToSharedMemory(&stats).ok());

  auto files = ListFiles(dir_.path(), "");
  ASSERT_TRUE(files.ok());
  bool workload_backed_up = false;
  for (const std::string& f : *files) {
    EXPECT_EQ(f.find("__scuba"), std::string::npos)
        << "system table leaked into disk backups: " << f;
    if (f.find("requests") != std::string::npos) workload_backed_up = true;
  }
  EXPECT_TRUE(workload_backed_up);
}

// The tentpole acceptance check at leaf scope: restart-history rows written
// by generation 1 ride the shm handoff and are queryable from generation 2,
// alongside generation 2's own recovery row.
TEST_F(SelfStatsTableTest, RestartHistorySurvivesShmHandoff) {
  uint64_t gen1 = 0;
  {
    LeafServer leaf(MakeConfig());
    ASSERT_TRUE(leaf.Start().ok());
    gen1 = leaf.heartbeat_generation();
    ASSERT_TRUE(leaf.AddRows("requests", MakeRows(200)).ok());
    ASSERT_TRUE(leaf.stats_exporter()->ExportOnce().ok());
    ShutdownStats stats;
    ASSERT_TRUE(leaf.ShutdownToSharedMemory(&stats).ok());
  }

  LeafServer successor(MakeConfig());
  auto recovery = successor.Start();
  ASSERT_TRUE(recovery.ok());
  EXPECT_EQ(recovery->source, RecoverySource::kSharedMemory);
  EXPECT_EQ(successor.heartbeat_generation(), gen1 + 1);

  auto restarts = successor.ExecuteQuery(RestartRowsByGeneration());
  ASSERT_TRUE(restarts.ok()) << restarts.status().ToString();
  auto groups = restarts->Finalize({Count()});
  // At least the predecessor's generation and the successor's: history
  // spans process generations.
  ASSERT_GE(groups.size(), 2u);
  bool saw_gen1 = false;
  bool saw_gen2 = false;
  for (const auto& g : groups) {
    ASSERT_EQ(g.group_key.size(), 1u);
    int64_t generation = std::get<int64_t>(g.group_key[0]);
    if (generation == static_cast<int64_t>(gen1)) saw_gen1 = true;
    if (generation == static_cast<int64_t>(gen1 + 1)) saw_gen2 = true;
  }
  EXPECT_TRUE(saw_gen1) << "predecessor's restart rows lost in handoff";
  EXPECT_TRUE(saw_gen2) << "successor wrote no recovery row";

  // The workload table also made it over.
  Query q;
  q.table = "requests";
  q.aggregates = {Count()};
  auto workload = successor.ExecuteQuery(q);
  ASSERT_TRUE(workload.ok());
  EXPECT_EQ(workload->Finalize({Count()})[0].aggregates[0], 200.0);
}

// A cancelled shutdown (the phase-aware watchdog's targeted kill) leaves
// the valid bit unset; the successor falls back to disk recovery without
// losing workload data.
TEST_F(SelfStatsTableTest, CancelledShutdownFallsBackToDisk) {
  {
    LeafServer leaf(MakeConfig());
    ASSERT_TRUE(leaf.Start().ok());
    ASSERT_TRUE(leaf.AddRows("requests", MakeRows(300)).ok());
    // Cancel before the copy starts: the first row-block boundary check
    // aborts the shutdown.
    leaf.RequestShutdownCancel();
    ShutdownStats stats;
    Status s = leaf.ShutdownToSharedMemory(&stats);
    EXPECT_TRUE(s.IsAborted()) << s.ToString();
    // The heartbeat records the failure for external observers.
    auto reading = RestartHeartbeat::ReadOnce(ns_.prefix(), 0);
    ASSERT_TRUE(reading.ok());
    EXPECT_EQ(reading->phase, RestartPhase::kFailed);
  }

  LeafServer successor(MakeConfig());
  auto recovery = successor.Start();
  ASSERT_TRUE(recovery.ok()) << recovery.status().ToString();
  EXPECT_EQ(recovery->source, RecoverySource::kDisk);
  Query q;
  q.table = "requests";
  q.aggregates = {Count()};
  auto workload = successor.ExecuteQuery(q);
  ASSERT_TRUE(workload.ok());
  EXPECT_EQ(workload->Finalize({Count()})[0].aggregates[0], 300.0);
}

}  // namespace
}  // namespace scuba
