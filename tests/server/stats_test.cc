#include <gtest/gtest.h>

#include "server/leaf_server.h"
#include "test_util.h"

namespace scuba {
namespace {

using testing_util::MakeRows;
using testing_util::ShmNamespace;
using testing_util::TempDir;

LeafServerConfig MakeConfig(const ShmNamespace& ns, const TempDir& dir) {
  LeafServerConfig config;
  config.leaf_id = 3;
  config.namespace_prefix = ns.prefix();
  config.backup_dir = dir.path() + "/leaf";
  config.memory_capacity_bytes = 64 << 20;
  return config;
}

TEST(LeafStatsTest, FreshLeafStats) {
  ShmNamespace ns("st1");
  TempDir dir("st1");
  LeafServer leaf(MakeConfig(ns, dir));
  ASSERT_TRUE(leaf.Start().ok());
  LeafServer::Stats stats = leaf.GetStats();
  EXPECT_EQ(stats.leaf_id, 3u);
  EXPECT_EQ(stats.state, LeafState::kAlive);
  EXPECT_EQ(stats.last_recovery_source, RecoverySource::kFresh);
  EXPECT_EQ(stats.total_rows, 0u);
  EXPECT_EQ(stats.memory_capacity_bytes, 64u << 20);
  EXPECT_TRUE(stats.tables.empty());
}

TEST(LeafStatsTest, PerTableBreakdown) {
  ShmNamespace ns("st2");
  TempDir dir("st2");
  LeafServer leaf(MakeConfig(ns, dir));
  ASSERT_TRUE(leaf.Start().ok());

  // 9 * 8192 rows: one sealed block (65,536) + buffered remainder.
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(leaf.AddRows("events", MakeRows(8192, 1000 + i)).ok());
  }
  ASSERT_TRUE(leaf.AddRows("errors", MakeRows(100, 5000)).ok());

  LeafServer::Stats stats = leaf.GetStats();
  ASSERT_EQ(stats.tables.size(), 2u);
  EXPECT_EQ(stats.total_rows, 9u * 8192 + 100);

  const auto& events = stats.tables[0];
  EXPECT_EQ(events.name, "events");
  EXPECT_EQ(events.row_count, 9u * 8192);
  EXPECT_EQ(events.num_row_blocks, 1u);
  EXPECT_EQ(events.buffered_rows, 9u * 8192 - 65536);
  EXPECT_GT(events.heap_bytes, 0u);
  // Sealed service-log data compresses well (see E2).
  EXPECT_GT(events.compression_ratio, 3.0);
  EXPECT_EQ(events.min_time, 1000 - 0);  // MakeRows starts at start_time
  EXPECT_GT(events.max_time, events.min_time);

  const auto& errors = stats.tables[1];
  EXPECT_EQ(errors.name, "errors");
  EXPECT_EQ(errors.num_row_blocks, 0u);  // all buffered
  EXPECT_EQ(errors.buffered_rows, 100u);
  EXPECT_EQ(errors.compression_ratio, 0.0);  // nothing sealed yet
}

TEST(LeafStatsTest, RecoveryInfoAfterShmRestart) {
  ShmNamespace ns("st3");
  TempDir dir("st3");
  {
    LeafServer leaf(MakeConfig(ns, dir));
    ASSERT_TRUE(leaf.Start().ok());
    ASSERT_TRUE(leaf.AddRows("events", MakeRows(500)).ok());
    ShutdownStats sstats;
    ASSERT_TRUE(leaf.ShutdownToSharedMemory(&sstats).ok());
    EXPECT_EQ(leaf.GetStats().state, LeafState::kExit);
  }
  LeafServer fresh(MakeConfig(ns, dir));
  ASSERT_TRUE(fresh.Start().ok());
  LeafServer::Stats stats = fresh.GetStats();
  EXPECT_EQ(stats.last_recovery_source, RecoverySource::kSharedMemory);
  EXPECT_GT(stats.last_recovery_micros, 0);
  EXPECT_EQ(stats.total_rows, 500u);
}

}  // namespace
}  // namespace scuba
