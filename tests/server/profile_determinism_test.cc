// The profile determinism contract: merged QueryProfile COUNTERS (blocks,
// rows, bytes, leaves) are bit-identical regardless of how the work was
// scheduled — per-leaf scan pool size (num_query_threads 1/2/8), sequential
// vs parallel aggregator fan-out, and with one leaf Unavailable
// mid-rollover. Timings sum on merge but are excluded from the contract.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "query/query_profile.h"
#include "server/aggregator.h"
#include "test_util.h"

namespace scuba {
namespace {

using testing_util::MakeRows;
using testing_util::ShmNamespace;
using testing_util::TempDir;

struct RunConfig {
  size_t num_query_threads = 1;
  bool parallel_fanout = false;
  bool kill_leaf = false;  // shut leaf 1 down before querying
};

// Builds a fresh 3-leaf cluster with identical data (2 sealed blocks + a
// live write buffer per leaf, via shm restarts), runs the same query, and
// returns the merged profile. Every invocation must produce bit-identical
// counters no matter how RunConfig schedules the work.
QueryProfile RunCluster(const std::string& tag, const RunConfig& run) {
  ShmNamespace ns(tag);
  TempDir dir(tag);
  std::vector<std::unique_ptr<LeafServer>> leaves;
  Aggregator aggregator;

  auto make_config = [&](size_t i) {
    LeafServerConfig config;
    config.leaf_id = static_cast<uint32_t>(i);
    config.namespace_prefix = ns.prefix();
    config.backup_dir = dir.path() + "/leaf_" + std::to_string(i);
    config.num_query_threads = run.num_query_threads;
    return config;
  };

  for (size_t i = 0; i < 3; ++i) {
    leaves.push_back(std::make_unique<LeafServer>(make_config(i)));
    EXPECT_TRUE(leaves.back()->Start().ok());
  }
  // Two add+restart rounds seal two row blocks per leaf; the final batch
  // stays in the write buffer so the buffered path is covered too.
  for (int round = 0; round < 2; ++round) {
    for (size_t i = 0; i < 3; ++i) {
      EXPECT_TRUE(leaves[i]
                      ->AddRows("events", MakeRows(800, 1000 + 100 * round,
                                                   17 * (i + 1) + round))
                      .ok());
      ShutdownStats stats;
      EXPECT_TRUE(leaves[i]->ShutdownToSharedMemory(&stats).ok());
      leaves[i] = std::make_unique<LeafServer>(make_config(i));
      EXPECT_TRUE(leaves[i]->Start().ok());
    }
  }
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(
        leaves[i]->AddRows("events", MakeRows(150, 1300, 31 * (i + 1))).ok());
    aggregator.AddLeaf(leaves[i].get());
  }

  if (run.kill_leaf) {
    ShutdownStats stats;
    EXPECT_TRUE(leaves[1]->ShutdownToSharedMemory(&stats).ok());
  }
  aggregator.SetParallelFanout(run.parallel_fanout);

  Query q;
  q.table = "events";
  q.predicates = {{"status", CompareOp::kGe, Value(int64_t{500})}};
  q.group_by = {"service"};
  q.aggregates = {Count(), Avg("latency_ms")};
  auto result = aggregator.Execute(q);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? result->profile() : QueryProfile{};
}

void ExpectSameCounters(const QueryProfile& got, const QueryProfile& want,
                        const std::string& label) {
  EXPECT_EQ(got.blocks_scanned, want.blocks_scanned) << label;
  EXPECT_EQ(got.blocks_time_pruned, want.blocks_time_pruned) << label;
  EXPECT_EQ(got.blocks_zone_pruned, want.blocks_zone_pruned) << label;
  EXPECT_EQ(got.rows_scanned, want.rows_scanned) << label;
  EXPECT_EQ(got.rows_matched, want.rows_matched) << label;
  EXPECT_EQ(got.bytes_decoded, want.bytes_decoded) << label;
  EXPECT_EQ(got.leaves_total, want.leaves_total) << label;
  EXPECT_EQ(got.leaves_responded, want.leaves_responded) << label;
  EXPECT_EQ(got.unavailable_leaves, want.unavailable_leaves) << label;
}

TEST(ProfileDeterminism, CountersIdenticalAcrossSchedules) {
  QueryProfile baseline = RunCluster("pdet_base", RunConfig{});
  EXPECT_GT(baseline.rows_scanned, 0u);
  EXPECT_GT(baseline.blocks_scanned, 0u);
  EXPECT_EQ(baseline.leaves_responded, 3u);

  int n = 0;
  for (size_t threads : {size_t{2}, size_t{8}}) {
    for (bool parallel : {false, true}) {
      RunConfig run;
      run.num_query_threads = threads;
      run.parallel_fanout = parallel;
      std::string label = "threads=" + std::to_string(threads) +
                          (parallel ? " parallel" : " sequential");
      QueryProfile got =
          RunCluster("pdet_" + std::to_string(n++), run);
      ExpectSameCounters(got, baseline, label);
    }
  }
}

TEST(ProfileDeterminism, CountersIdenticalWithLeafUnavailableMidRollover) {
  RunConfig seq;
  seq.kill_leaf = true;
  QueryProfile baseline = RunCluster("pdet_kill_seq", seq);
  EXPECT_EQ(baseline.leaves_responded, 2u);
  ASSERT_EQ(baseline.unavailable_leaves.size(), 1u);
  EXPECT_EQ(baseline.unavailable_leaves[0], 1u);
  EXPECT_GT(baseline.rows_scanned, 0u);

  RunConfig par = seq;
  par.parallel_fanout = true;
  par.num_query_threads = 8;
  QueryProfile got = RunCluster("pdet_kill_par", par);
  ExpectSameCounters(got, baseline, "parallel+8threads vs sequential");
}

}  // namespace
}  // namespace scuba
