// Aggregator result cache correctness: sealed whole-bucket segments serve
// cached per-leaf partials; everything that can still change — the
// write-buffer tail, tables that just ingested, leaves that restarted —
// must rescan. Results must be bit-identical with the cache on, always.

#include "server/result_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/shutdown.h"
#include "server/aggregator.h"
#include "server/leaf_server.h"
#include "test_util.h"

namespace scuba {
namespace {

using testing_util::ShmNamespace;
using testing_util::TempDir;

// Rows at one per second from `start`, one int64 `v` and a service tag, so
// a 60-second bucket holds exactly 60 rows.
std::vector<Row> SecondRows(size_t n, int64_t start) {
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Row row;
    row.SetTime(start + static_cast<int64_t>(i));
    row.Set("v", static_cast<int64_t>(i % 100));
    row.Set("service", std::string(i % 2 == 0 ? "web" : "api"));
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<ResultRow> Rows(const QueryResult& r, const Query& q) {
  return r.Finalize(q.aggregates);
}

void ExpectSameRows(const std::vector<ResultRow>& a,
                    const std::vector<ResultRow>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].group_key, b[i].group_key);
    ASSERT_EQ(a[i].aggregates.size(), b[i].aggregates.size());
    for (size_t c = 0; c < a[i].aggregates.size(); ++c) {
      EXPECT_DOUBLE_EQ(a[i].aggregates[c], b[i].aggregates[c]);
    }
  }
}

class ResultCacheTest : public ::testing::Test {
 protected:
  // 60s-aligned, so [kT0, kT0+599] decomposes into exactly 10 whole buckets.
  static constexpr int64_t kT0 = 1400000040;

  ResultCacheTest() : ns_("rcache"), dir_("rcache") {
    aggregator_.EnableResultCache(4 << 20);
  }

  LeafServer* StartLeaf(uint32_t id) {
    LeafServerConfig config;
    config.leaf_id = id;
    config.namespace_prefix = ns_.prefix();
    config.backup_dir = dir_.path() + "/leaf_" + std::to_string(id);
    leaves_.push_back(std::make_unique<LeafServer>(config));
    EXPECT_TRUE(leaves_.back()->Start().ok());
    Register();
    return leaves_.back().get();
  }

  // Clean restart: shutdown to shm, successor adopts the segments. Seals
  // every write buffer as a side effect (the test's way of getting sealed
  // buckets) and bumps the leaf's instance token.
  LeafServer* RestartLeaf(size_t index) {
    ShutdownStats stats;
    EXPECT_TRUE(leaves_[index]->ShutdownToSharedMemory(&stats).ok());
    LeafServerConfig config = leaves_[index]->config();
    leaves_[index] = std::make_unique<LeafServer>(config);
    auto recovered = leaves_[index]->Start();
    EXPECT_TRUE(recovered.ok());
    Register();
    return leaves_[index].get();
  }

  void Register() {
    std::vector<LeafServer*> ptrs;
    for (auto& leaf : leaves_) ptrs.push_back(leaf.get());
    aggregator_.SetLeaves(std::move(ptrs));
  }

  // The standard dashboard query: per-minute buckets over [kT0, kT0+599],
  // which decomposes into a head fragment, whole buckets, and a tail.
  Query DashboardQuery() const {
    Query q;
    q.table = "events";
    q.begin_time = kT0;
    q.end_time = kT0 + 599;
    q.time_bucket_seconds = 60;
    q.group_by = {"service"};
    q.aggregates = {Count(), Avg("v")};
    return q;
  }

  QueryResult MustExecute(const Query& q) {
    auto result = aggregator_.Execute(q);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return *std::move(result);
  }

  ResultCache* cache() { return aggregator_.result_cache(); }

  ShmNamespace ns_;
  TempDir dir_;
  std::vector<std::unique_ptr<LeafServer>> leaves_;
  Aggregator aggregator_;
};

TEST_F(ResultCacheTest, SealedBucketsHitOnRepeatWithIdenticalResults) {
  LeafServer* leaf = StartLeaf(0);
  ASSERT_TRUE(leaf->AddRows("events", SecondRows(600, kT0)).ok());
  RestartLeaf(0);  // seal everything

  Query q = DashboardQuery();
  QueryResult first = MustExecute(q);
  EXPECT_EQ(first.profile().cache_hit_buckets, 0u);
  EXPECT_GT(first.profile().cache_miss_buckets, 0u);
  EXPECT_GT(cache()->GetStats().stores, 0u);

  QueryResult second = MustExecute(q);
  EXPECT_GT(second.profile().cache_hit_buckets, 0u);
  EXPECT_EQ(second.profile().cache_miss_buckets, 0u);
  EXPECT_EQ(second.rows_matched, first.rows_matched);
  ExpectSameRows(Rows(first, q), Rows(second, q));

  // And the cached result still equals a cache-free aggregator's.
  Aggregator plain;
  std::vector<LeafServer*> ptrs{leaves_[0].get()};
  plain.SetLeaves(ptrs);
  auto uncached = plain.Execute(q);
  ASSERT_TRUE(uncached.ok());
  ExpectSameRows(Rows(*uncached, q), Rows(second, q));
}

TEST_F(ResultCacheTest, WriteBufferBucketsAreNeverStored) {
  LeafServer* leaf = StartLeaf(0);
  ASSERT_TRUE(leaf->AddRows("events", SecondRows(600, kT0)).ok());
  RestartLeaf(0);
  // A fresh unsealed tail in the LAST bucket of the window.
  ASSERT_TRUE(
      leaves_[0]->AddRows("events", SecondRows(30, kT0 + 570)).ok());

  Query q = DashboardQuery();
  QueryResult first = MustExecute(q);
  uint64_t stores_after_first = cache()->GetStats().stores;
  QueryResult second = MustExecute(q);

  // The buffer-overlapping bucket misses every time (never stored), the
  // sealed ones hit.
  EXPECT_GT(second.profile().cache_hit_buckets, 0u);
  EXPECT_GT(second.profile().cache_miss_buckets, 0u);
  EXPECT_EQ(cache()->GetStats().stores, stores_after_first);
  EXPECT_EQ(second.rows_matched, first.rows_matched);
  EXPECT_EQ(second.rows_matched, 630u);
  ExpectSameRows(Rows(first, q), Rows(second, q));
}

TEST_F(ResultCacheTest, IngestIntoCachedBucketInvalidates) {
  LeafServer* leaf = StartLeaf(0);
  ASSERT_TRUE(leaf->AddRows("events", SecondRows(600, kT0)).ok());
  RestartLeaf(0);

  Query q = DashboardQuery();
  QueryResult warm = MustExecute(q);
  (void)MustExecute(q);  // now served from cache

  // Late rows land in a long-sealed minute. They go to the write buffer,
  // but the ingest observer must also drop the cached partial for that
  // bucket — a stale hit would hide them forever.
  ASSERT_TRUE(
      leaves_[0]->AddRows("events", SecondRows(10, kT0 + 120)).ok());
  QueryResult after = MustExecute(q);
  EXPECT_EQ(after.rows_matched, warm.rows_matched + 10);
  EXPECT_GT(cache()->GetStats().invalidations, 0u);
  EXPECT_EQ(after.profile().cache_hit_buckets, 0u);  // all dropped

  // Once the late rows seal, the buckets become cacheable again.
  RestartLeaf(0);
  QueryResult resealed = MustExecute(q);
  EXPECT_EQ(resealed.rows_matched, warm.rows_matched + 10);
  QueryResult cached_again = MustExecute(q);
  EXPECT_GT(cached_again.profile().cache_hit_buckets, 0u);
  ExpectSameRows(Rows(resealed, q), Rows(cached_again, q));
}

TEST_F(ResultCacheTest, LeafRestartBumpsInstanceTokenAndMisses) {
  LeafServer* leaf = StartLeaf(0);
  ASSERT_TRUE(leaf->AddRows("events", SecondRows(600, kT0)).ok());
  RestartLeaf(0);

  Query q = DashboardQuery();
  QueryResult warm = MustExecute(q);
  QueryResult hit = MustExecute(q);
  EXPECT_GT(hit.profile().cache_hit_buckets, 0u);

  // The successor has a new instance token: its predecessor's entries are
  // unreachable (not merely invalidated), so the first post-restart query
  // rescans everything and refills.
  RestartLeaf(0);
  QueryResult post = MustExecute(q);
  EXPECT_EQ(post.profile().cache_hit_buckets, 0u);
  EXPECT_GT(post.profile().cache_miss_buckets, 0u);
  EXPECT_EQ(post.rows_matched, warm.rows_matched);
  ExpectSameRows(Rows(warm, q), Rows(post, q));

  QueryResult refilled = MustExecute(q);
  EXPECT_GT(refilled.profile().cache_hit_buckets, 0u);
  ExpectSameRows(Rows(warm, q), Rows(refilled, q));
}

TEST_F(ResultCacheTest, SystemTablesBypassTheCache) {
  StartLeaf(0);

  // Control first: the same shape against a regular table stores segments
  // (empty buckets cache too — they are facts about sealed history; the
  // ingested rows sit far outside the window, in the write buffer).
  ASSERT_TRUE(
      leaves_[0]->AddRows("events", SecondRows(10, kT0 + 100000)).ok());
  Query control = DashboardQuery();
  (void)MustExecute(control);
  EXPECT_GT(cache()->GetStats().stores, 0u);

  uint64_t stores_before = cache()->GetStats().stores;
  Query sys = DashboardQuery();
  sys.table = "__scuba_stats";
  sys.group_by.clear();
  sys.aggregates = {Count()};
  sys.begin_time = 0;
  sys.end_time = 599;  // shape qualifies; only the table name disqualifies
  QueryResult result = MustExecute(sys);
  EXPECT_EQ(cache()->GetStats().stores, stores_before);
  EXPECT_EQ(result.profile().cache_hit_buckets, 0u);
  EXPECT_EQ(result.profile().cache_miss_buckets, 0u);
}

TEST_F(ResultCacheTest, CacheStaysWithinByteBudgetOverManyCycles) {
  LeafServer* leaf = StartLeaf(0);
  ASSERT_TRUE(leaf->AddRows("events", SecondRows(600, kT0)).ok());
  RestartLeaf(0);

  // A budget small enough that 100 distinct dashboards cannot all fit.
  Aggregator bounded;
  bounded.EnableResultCache(16 * 1024);
  std::vector<LeafServer*> ptrs{leaves_[0].get()};
  bounded.SetLeaves(ptrs);
  ResultCache* cache = bounded.result_cache();

  for (int i = 0; i < 100; ++i) {
    Query q = DashboardQuery();
    // A different literal each cycle: distinct keys, no reuse.
    q.predicates = {{"v", CompareOp::kGe, Value(static_cast<int64_t>(i))}};
    auto result = bounded.Execute(q);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ResultCache::Stats stats = cache->GetStats();
    ASSERT_LE(stats.bytes, cache->max_bytes()) << "cycle " << i;
  }
  ResultCache::Stats stats = cache->GetStats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.entries, 0u);
}

// --- direct unit tests -----------------------------------------------------

QueryResult MakeSmallResult(double count) {
  QueryResult r({Count()});
  std::vector<Value> key{Value(std::string("web"))};
  std::vector<QueryResult::Sample> samples{{0.0, false}};
  for (int i = 0; i < static_cast<int>(count); ++i) r.Accumulate(key, samples);
  return r;
}

TEST(ResultCacheUnitTest, SegmentKeySeparatesLiteralsAndBuckets) {
  Query a;
  a.table = "events";
  a.time_bucket_seconds = 60;
  a.predicates = {{"status", CompareOp::kGe, Value(int64_t{500})}};
  a.aggregates = {Count()};
  Query b = a;
  b.predicates[0].literal = Value(int64_t{200});

  // Fingerprint masks literals — the key must not.
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  EXPECT_NE(ResultCache::SegmentKey(1, 7, a, 1200),
            ResultCache::SegmentKey(1, 7, b, 1200));
  EXPECT_NE(ResultCache::SegmentKey(1, 7, a, 1200),
            ResultCache::SegmentKey(1, 7, a, 1260));
  EXPECT_NE(ResultCache::SegmentKey(1, 7, a, 1200),
            ResultCache::SegmentKey(1, 8, a, 1200));
  EXPECT_NE(ResultCache::SegmentKey(2, 7, a, 1200),
            ResultCache::SegmentKey(1, 7, a, 1200));
  EXPECT_EQ(ResultCache::SegmentKey(1, 7, a, 1200),
            ResultCache::SegmentKey(1, 7, a, 1200));
}

TEST(ResultCacheUnitTest, StoreDroppedWhenEpochAdvancedPastScan) {
  ResultCache cache(1 << 20);
  uint64_t epoch = cache.TableEpoch(0, "events");
  cache.InvalidateTable(0, "events");  // ingest races the scan
  cache.Store("k", 0, "events", epoch, MakeSmallResult(5));
  QueryResult out({Count()});
  EXPECT_FALSE(cache.Lookup("k", &out));
  EXPECT_EQ(cache.GetStats().stores, 0u);

  uint64_t fresh = cache.TableEpoch(0, "events");
  cache.Store("k", 0, "events", fresh, MakeSmallResult(5));
  EXPECT_TRUE(cache.Lookup("k", &out));
  EXPECT_EQ(out.Finalize({Count()})[0].aggregates[0], 5.0);
}

TEST(ResultCacheUnitTest, LruEvictsOldestUnderPressure) {
  QueryResult sample = MakeSmallResult(1);
  const uint64_t per_entry = sample.EstimatedHeapBytes() + 2;
  ResultCache cache(3 * per_entry + per_entry / 2);  // room for ~3
  uint64_t epoch = cache.TableEpoch(0, "events");
  for (int i = 0; i < 5; ++i) {
    cache.Store("k" + std::to_string(i), 0, "events", epoch,
                MakeSmallResult(1));
  }
  ResultCache::Stats stats = cache.GetStats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes, cache.max_bytes());
  QueryResult out({Count()});
  EXPECT_FALSE(cache.Lookup("k0", &out));  // oldest gone
  EXPECT_TRUE(cache.Lookup("k4", &out));   // newest resident
}

}  // namespace
}  // namespace scuba
