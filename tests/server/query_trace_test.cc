// Distributed query tracing: a sampled query's span timeline covers the
// aggregator's wall time (>90%, sequential AND parallel fan-out), the span
// tree has the fanout -> per-leaf -> per-block shape, sampling knobs drive
// LastSampledTraceJson, and unsampled queries record nothing.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "query/query_context.h"
#include "server/aggregator.h"
#include "test_util.h"
#include "util/clock.h"

namespace scuba {
namespace {

using testing_util::MakeRows;
using testing_util::ShmNamespace;
using testing_util::TempDir;

class QueryTraceTest : public ::testing::Test {
 protected:
  QueryTraceTest() : ns_("qtrace"), dir_("qtrace") {}

  void StartLeaves(size_t n) {
    for (size_t i = 0; i < n; ++i) {
      LeafServerConfig config;
      config.leaf_id = static_cast<uint32_t>(i);
      config.namespace_prefix = ns_.prefix();
      config.backup_dir = dir_.path() + "/leaf_" + std::to_string(i);
      leaves_.push_back(std::make_unique<LeafServer>(config));
      ASSERT_TRUE(leaves_.back()->Start().ok());
      aggregator_.AddLeaf(leaves_.back().get());
      ASSERT_TRUE(
          leaves_.back()->AddRows("events", MakeRows(400, 1000 + i)).ok());
    }
  }

  // Clean-restarts every leaf through shared memory: shutdown seals the
  // write buffers, so the successors hold sealed row blocks and sampled
  // queries produce the full block/decode/kernel span shape.
  void SealViaRestart() {
    std::vector<LeafServer*> fresh;
    for (auto& leaf : leaves_) {
      ShutdownStats stats;
      ASSERT_TRUE(leaf->ShutdownToSharedMemory(&stats).ok());
      LeafServerConfig config = leaf->config();
      leaf = std::make_unique<LeafServer>(config);
      ASSERT_TRUE(leaf->Start().ok());
      fresh.push_back(leaf.get());
    }
    aggregator_.SetLeaves(std::move(fresh));
  }

  Query GroupQuery() {
    Query q;
    q.table = "events";
    q.group_by = {"service"};
    q.aggregates = {Count(), Avg("latency_ms")};
    return q;
  }

  ShmNamespace ns_;
  TempDir dir_;
  std::vector<std::unique_ptr<LeafServer>> leaves_;
  Aggregator aggregator_;
};

int CountNamed(const std::vector<obs::TraceSpan>& spans,
               const std::string& name) {
  int n = 0;
  for (const auto& s : spans) {
    if (s.name == name) ++n;
  }
  return n;
}

int FindNamed(const std::vector<obs::TraceSpan>& spans,
              const std::string& name) {
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

// The acceptance bar: root spans, recorded back to back on the aggregator
// thread, must account for >90% of the measured wall time around Execute.
void ExpectCoverage(Aggregator& aggregator, const Query& q, size_t leaves,
                    const std::string& label) {
  obs::PhaseTracer tracer;
  QueryContext ctx;
  ctx.query_id = NextQueryId();
  ctx.sampled = true;
  ctx.tracer = &tracer;

  Stopwatch wall;
  auto result = aggregator.Execute(q, ctx);
  int64_t wall_micros = wall.ElapsedMicros();
  ASSERT_TRUE(result.ok()) << label << ": " << result.status().ToString();

  EXPECT_GE(tracer.RootCoverageMicros(),
            static_cast<int64_t>(0.9 * static_cast<double>(wall_micros)))
      << label << ": wall " << wall_micros << "us, roots "
      << tracer.RootCoverageMicros() << "us";

  std::vector<obs::TraceSpan> spans = tracer.Snapshot();
  int fanout = FindNamed(spans, "fanout");
  ASSERT_GE(fanout, 0) << label;
  EXPECT_EQ(spans[fanout].parent, -1) << label;
  EXPECT_GE(FindNamed(spans, "merge"), 0) << label;

  // Every leaf's execute span hangs under the fanout root — on worker
  // threads this only happens via the explicit-parent attach.
  int leaf_spans = 0;
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].name.rfind("leaf ", 0) == 0) {
      ++leaf_spans;
      EXPECT_EQ(spans[i].parent, fanout) << label << ": " << spans[i].name;
    }
  }
  EXPECT_EQ(leaf_spans, static_cast<int>(leaves)) << label;

  // Block scans nest under their leaf span (depth >= 2).
  int block = FindNamed(spans, "block 0");
  ASSERT_GE(block, 0) << label;
  EXPECT_GE(spans[block].depth, 2) << label;
  ASSERT_GE(spans[block].parent, 0) << label;
  EXPECT_EQ(spans[spans[block].parent].name.rfind("leaf ", 0), 0u) << label;

  // Synthesized decode/kernel children ride under the block spans.
  EXPECT_GT(CountNamed(spans, "decode"), 0) << label;
  EXPECT_GT(CountNamed(spans, "kernel"), 0) << label;
}

TEST_F(QueryTraceTest, SequentialFanoutCoversWall) {
  StartLeaves(3);
  SealViaRestart();
  ExpectCoverage(aggregator_, GroupQuery(), 3, "sequential");
}

TEST_F(QueryTraceTest, ParallelFanoutCoversWall) {
  StartLeaves(3);
  SealViaRestart();
  aggregator_.SetParallelFanout(true);
  ExpectCoverage(aggregator_, GroupQuery(), 3, "parallel");
}

TEST_F(QueryTraceTest, SamplingEveryNDrivesLastTrace) {
  StartLeaves(2);
  EXPECT_TRUE(aggregator_.LastSampledTraceJson().empty());

  aggregator_.SetTraceSampling(2);
  ASSERT_TRUE(aggregator_.Execute(GroupQuery()).ok());  // 1st: sampled
  std::string first = aggregator_.LastSampledTraceJson();
  EXPECT_NE(first.find("\"spans\""), std::string::npos);
  EXPECT_NE(first.find("fanout"), std::string::npos);

  ASSERT_TRUE(aggregator_.Execute(GroupQuery()).ok());  // 2nd: not sampled
  EXPECT_EQ(aggregator_.LastSampledTraceJson(), first);

  ASSERT_TRUE(aggregator_.Execute(GroupQuery()).ok());  // 3rd: sampled again
  EXPECT_NE(aggregator_.LastSampledTraceJson(), first);
}

TEST_F(QueryTraceTest, UnsampledQueryRecordsNoSpans) {
  StartLeaves(2);
  // No tracer in the context: the leaf and executor instrumentation must
  // all no-op through the null tracer.
  QueryContext ctx;
  ctx.query_id = NextQueryId();
  auto result = aggregator_.Execute(GroupQuery(), ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(aggregator_.LastSampledTraceJson().empty());
  // Profile counters still fill in even without a tracer.
  EXPECT_GT(result->profile().rows_scanned, 0u);
  EXPECT_EQ(result->profile().leaves_responded, 2u);
}

TEST_F(QueryTraceTest, SystemTablesNeverSampled) {
  StartLeaves(2);
  aggregator_.SetTraceSampling(1);  // sample everything...
  Query q;
  q.table = "__scuba_queries";
  q.aggregates = {Count()};
  ASSERT_TRUE(aggregator_.Execute(q).ok());
  // ...except system tables.
  EXPECT_TRUE(aggregator_.LastSampledTraceJson().empty());
}

}  // namespace
}  // namespace scuba
