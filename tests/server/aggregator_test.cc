#include "server/aggregator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "test_util.h"

namespace scuba {
namespace {

using testing_util::MakeRows;
using testing_util::ShmNamespace;
using testing_util::TempDir;

class AggregatorTest : public ::testing::Test {
 protected:
  AggregatorTest() : ns_("agg"), dir_("agg") {}

  void StartLeaves(size_t n) {
    for (size_t i = 0; i < n; ++i) {
      LeafServerConfig config;
      config.leaf_id = static_cast<uint32_t>(i);
      config.namespace_prefix = ns_.prefix();
      config.backup_dir = dir_.path() + "/leaf_" + std::to_string(i);
      leaves_.push_back(std::make_unique<LeafServer>(config));
      ASSERT_TRUE(leaves_.back()->Start().ok());
      aggregator_.AddLeaf(leaves_.back().get());
    }
  }

  Query CountQuery(const std::string& table) {
    Query q;
    q.table = table;
    q.aggregates = {Count()};
    return q;
  }

  ShmNamespace ns_;
  TempDir dir_;
  std::vector<std::unique_ptr<LeafServer>> leaves_;
  Aggregator aggregator_;
};

TEST_F(AggregatorTest, MergesAcrossLeaves) {
  StartLeaves(4);
  // Spread 1000 rows over 4 leaves (250 each).
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        leaves_[i]->AddRows("events", MakeRows(250, 1000 + i)).ok());
  }
  auto result = aggregator_.Execute(CountQuery("events"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->leaves_total, 4u);
  EXPECT_EQ(result->leaves_responded, 4u);
  EXPECT_FALSE(result->IsPartial());
  auto rows = result->Finalize({Count()});
  EXPECT_EQ(rows[0].aggregates[0], 1000.0);
}

TEST_F(AggregatorTest, PartialResultsWhenLeafRestarting) {
  StartLeaves(4);
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        leaves_[i]->AddRows("events", MakeRows(250, 1000 + i)).ok());
  }
  // Take one leaf down (clean shutdown -> EXIT: rejects queries).
  ShutdownStats stats;
  ASSERT_TRUE(leaves_[2]->ShutdownToSharedMemory(&stats).ok());

  auto result = aggregator_.Execute(CountQuery("events"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->leaves_total, 4u);
  EXPECT_EQ(result->leaves_responded, 3u);
  EXPECT_TRUE(result->IsPartial());
  auto rows = result->Finalize({Count()});
  EXPECT_EQ(rows[0].aggregates[0], 750.0);  // missing leaf 2's 250 rows
}

TEST_F(AggregatorTest, AvailableFractionTracksStates) {
  StartLeaves(4);
  EXPECT_DOUBLE_EQ(aggregator_.AvailableFraction(), 1.0);
  ShutdownStats stats;
  ASSERT_TRUE(leaves_[0]->ShutdownToSharedMemory(&stats).ok());
  EXPECT_DOUBLE_EQ(aggregator_.AvailableFraction(), 0.75);
}

TEST_F(AggregatorTest, GroupByMergesSemantically) {
  StartLeaves(2);
  // Leaf 0: 10 "web" rows; leaf 1: 5 "web" + 5 "api" rows.
  std::vector<Row> web_rows, mixed_rows;
  for (int i = 0; i < 10; ++i) {
    Row row;
    row.SetTime(100 + i);
    row.Set("service", std::string("web"));
    row.Set("latency_ms", 10.0);
    web_rows.push_back(row);
  }
  for (int i = 0; i < 10; ++i) {
    Row row;
    row.SetTime(100 + i);
    row.Set("service", std::string(i < 5 ? "web" : "api"));
    row.Set("latency_ms", 20.0);
    mixed_rows.push_back(row);
  }
  ASSERT_TRUE(leaves_[0]->AddRows("requests", web_rows).ok());
  ASSERT_TRUE(leaves_[1]->AddRows("requests", mixed_rows).ok());

  Query q;
  q.table = "requests";
  q.group_by = {"service"};
  q.aggregates = {Count(), Avg("latency_ms")};
  auto result = aggregator_.Execute(q);
  ASSERT_TRUE(result.ok());
  auto rows = result->Finalize(q.aggregates);
  ASSERT_EQ(rows.size(), 2u);
  // api: 5 rows at 20ms. web: 15 rows, avg (10*10 + 5*20)/15.
  EXPECT_EQ(std::get<std::string>(rows[0].group_key[0]), "api");
  EXPECT_EQ(rows[0].aggregates[0], 5.0);
  EXPECT_DOUBLE_EQ(rows[0].aggregates[1], 20.0);
  EXPECT_EQ(rows[1].aggregates[0], 15.0);
  EXPECT_DOUBLE_EQ(rows[1].aggregates[1], (100.0 + 100.0) / 15.0);
}

TEST_F(AggregatorTest, RealQueryErrorsPropagate) {
  StartLeaves(2);
  ASSERT_TRUE(leaves_[0]->AddRows("events", MakeRows(10)).ok());
  Query bad;
  bad.table = "events";
  bad.aggregates = {Sum("service")};  // aggregate over string
  EXPECT_TRUE(aggregator_.Execute(bad).status().IsInvalidArgument());
}

TEST_F(AggregatorTest, ParallelFanoutMatchesSequential) {
  StartLeaves(4);
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        leaves_[i]->AddRows("events", MakeRows(500, 1000 + i, i + 1)).ok());
  }
  Query q;
  q.table = "events";
  q.group_by = {"service"};
  q.aggregates = {Count(), Sum("latency_ms"), P99("latency_ms")};

  auto sequential = aggregator_.Execute(q);
  ASSERT_TRUE(sequential.ok());
  aggregator_.SetParallelFanout(true);
  auto parallel = aggregator_.Execute(q);
  ASSERT_TRUE(parallel.ok());

  auto a = sequential->Finalize(q.aggregates);
  auto b = parallel->Finalize(q.aggregates);
  ASSERT_EQ(a.size(), b.size());
  for (size_t r = 0; r < a.size(); ++r) {
    EXPECT_TRUE(a[r].group_key == b[r].group_key);
    for (size_t c = 0; c < a[r].aggregates.size(); ++c) {
      // Merge order differs between runs, so sums may differ in the last
      // ulp; counts/percentiles are exact.
      EXPECT_NEAR(a[r].aggregates[c], b[r].aggregates[c],
                  std::abs(a[r].aggregates[c]) * 1e-12);
    }
  }
  EXPECT_EQ(parallel->leaves_responded, 4u);
}

TEST_F(AggregatorTest, ParallelFanoutHandlesUnavailableLeaves) {
  StartLeaves(4);
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        leaves_[i]->AddRows("events", MakeRows(100, 1000 + i)).ok());
  }
  ShutdownStats stats;
  ASSERT_TRUE(leaves_[1]->ShutdownToSharedMemory(&stats).ok());
  aggregator_.SetParallelFanout(true);
  auto result = aggregator_.Execute(CountQuery("events"));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->IsPartial());
  EXPECT_EQ(result->leaves_responded, 3u);
  EXPECT_EQ(result->Finalize({Count()})[0].aggregates[0], 300.0);
}

TEST_F(AggregatorTest, NoLeavesMeansEmptyResult) {
  auto result = aggregator_.Execute(CountQuery("events"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->leaves_total, 0u);
  EXPECT_EQ(result->num_groups(), 0u);
  EXPECT_DOUBLE_EQ(aggregator_.AvailableFraction(), 1.0);
}

}  // namespace
}  // namespace scuba
