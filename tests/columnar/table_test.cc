#include "columnar/table.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace scuba {
namespace {

using testing_util::MakeRows;

TEST(TableTest, AddRowsBuffersUntilSealed) {
  Table table("events");
  ASSERT_TRUE(table.AddRows(MakeRows(100), 5000).ok());
  EXPECT_EQ(table.RowCount(), 100u);
  EXPECT_EQ(table.num_row_blocks(), 0u);  // all buffered
  ASSERT_TRUE(table.SealWriteBuffer(5000).ok());
  EXPECT_EQ(table.num_row_blocks(), 1u);
  EXPECT_EQ(table.RowCount(), 100u);
}

TEST(TableTest, SealEmptyBufferIsNoOp) {
  Table table("events");
  ASSERT_TRUE(table.SealWriteBuffer(0).ok());
  EXPECT_EQ(table.num_row_blocks(), 0u);
}

TEST(TableTest, BlocksInTimeRangePrunes) {
  Table table("events");
  ASSERT_TRUE(table.AddRows(MakeRows(50, /*start_time=*/1000), 0).ok());
  ASSERT_TRUE(table.SealWriteBuffer(0).ok());
  ASSERT_TRUE(table.AddRows(MakeRows(50, /*start_time=*/2000), 0).ok());
  ASSERT_TRUE(table.SealWriteBuffer(0).ok());
  ASSERT_TRUE(table.AddRows(MakeRows(50, /*start_time=*/3000), 0).ok());
  ASSERT_TRUE(table.SealWriteBuffer(0).ok());

  EXPECT_EQ(table.BlocksInTimeRange(0, 500).size(), 0u);
  EXPECT_EQ(table.BlocksInTimeRange(1000, 1004).size(), 1u);
  EXPECT_EQ(table.BlocksInTimeRange(1000, 2004).size(), 2u);
  EXPECT_EQ(table.BlocksInTimeRange(0, 100000).size(), 3u);
}

TEST(TableTest, ExpireByAgeDropsOldBlocks) {
  TableLimits limits;
  limits.max_age_seconds = 100;
  Table table("events", limits);
  ASSERT_TRUE(table.AddRows(MakeRows(50, /*start_time=*/1000), 0).ok());
  ASSERT_TRUE(table.SealWriteBuffer(0).ok());
  ASSERT_TRUE(table.AddRows(MakeRows(50, /*start_time=*/5000), 0).ok());
  ASSERT_TRUE(table.SealWriteBuffer(0).ok());

  // now=5050: cutoff 4950 -> first block (max_time ~1004) expires.
  EXPECT_EQ(table.ExpireData(5050), 1u);
  EXPECT_EQ(table.num_row_blocks(), 1u);
  // Nothing more to expire.
  EXPECT_EQ(table.ExpireData(5050), 0u);
}

TEST(TableTest, ExpireBySizeDropsOldestFirst) {
  TableLimits limits;
  limits.max_bytes = 1;  // absurdly small: everything but the last goes
  Table table("events", limits);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(table.AddRows(MakeRows(50, 1000 * (i + 1)), 0).ok());
    ASSERT_TRUE(table.SealWriteBuffer(0).ok());
  }
  EXPECT_EQ(table.ExpireData(99999), 2u);
  ASSERT_EQ(table.num_row_blocks(), 1u);
  // The newest block survives.
  EXPECT_GE(table.row_block(0)->header().min_time, 3000 - 2);
}

TEST(TableTest, NoLimitsNeverExpires) {
  Table table("events");
  ASSERT_TRUE(table.AddRows(MakeRows(50), 0).ok());
  ASSERT_TRUE(table.SealWriteBuffer(0).ok());
  EXPECT_EQ(table.ExpireData(1ll << 40), 0u);
}

TEST(TableTest, MemoryBytesTracksBlocksAndBuffer) {
  Table table("events");
  EXPECT_EQ(table.MemoryBytes(), 0u);
  ASSERT_TRUE(table.AddRows(MakeRows(100), 0).ok());
  uint64_t buffered = table.MemoryBytes();
  EXPECT_GT(buffered, 0u);
  ASSERT_TRUE(table.SealWriteBuffer(0).ok());
  EXPECT_GT(table.MemoryBytes(), 0u);
}

TEST(TableTest, ReleaseAndAdoptRowBlock) {
  Table table("events");
  ASSERT_TRUE(table.AddRows(MakeRows(10), 0).ok());
  ASSERT_TRUE(table.SealWriteBuffer(0).ok());
  auto block = table.ReleaseRowBlock(0);
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(table.RowCount(), 0u);
  table.AdoptRowBlock(std::move(block));
  EXPECT_EQ(table.RowCount(), 10u);
}

}  // namespace
}  // namespace scuba
