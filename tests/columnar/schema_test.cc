#include "columnar/schema.h"

#include <gtest/gtest.h>

namespace scuba {
namespace {

Schema MakeSchema() {
  Schema schema;
  schema.AddColumn("time", ColumnType::kInt64);
  schema.AddColumn("service", ColumnType::kString);
  schema.AddColumn("latency_ms", ColumnType::kDouble);
  return schema;
}

TEST(SchemaTest, FindColumn) {
  Schema schema = MakeSchema();
  EXPECT_EQ(schema.num_columns(), 3u);
  ASSERT_TRUE(schema.FindColumn("service").has_value());
  EXPECT_EQ(*schema.FindColumn("service"), 1u);
  EXPECT_FALSE(schema.FindColumn("missing").has_value());
}

TEST(SchemaTest, SerializationRoundTrip) {
  Schema schema = MakeSchema();
  ByteBuffer buf;
  schema.Serialize(&buf);
  Slice in = buf.AsSlice();
  auto parsed = Schema::Parse(&in);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, schema);
  EXPECT_TRUE(in.empty());
}

TEST(SchemaTest, EmptySchemaRoundTrips) {
  Schema schema;
  ByteBuffer buf;
  schema.Serialize(&buf);
  Slice in = buf.AsSlice();
  auto parsed = Schema::Parse(&in);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_columns(), 0u);
}

TEST(SchemaTest, ParseLeavesTrailingBytes) {
  Schema schema = MakeSchema();
  ByteBuffer buf;
  schema.Serialize(&buf);
  buf.Append("tail", 4);
  Slice in = buf.AsSlice();
  ASSERT_TRUE(Schema::Parse(&in).ok());
  EXPECT_EQ(in.size(), 4u);
}

TEST(SchemaTest, TruncatedInputIsCorruption) {
  Schema schema = MakeSchema();
  ByteBuffer buf;
  schema.Serialize(&buf);
  for (size_t cut = 1; cut < buf.size(); cut += 3) {
    Slice in(buf.data(), buf.size() - cut);
    EXPECT_FALSE(Schema::Parse(&in).ok()) << "cut " << cut;
  }
}

TEST(SchemaTest, InvalidTypeByteIsCorruption) {
  ByteBuffer buf;
  Schema schema;
  schema.AddColumn("x", ColumnType::kInt64);
  schema.Serialize(&buf);
  buf.data()[buf.size() - 1] = 99;  // clobber the type byte
  Slice in = buf.AsSlice();
  EXPECT_FALSE(Schema::Parse(&in).ok());
}

TEST(TypesTest, ValueTypeAndDefaults) {
  EXPECT_EQ(ValueType(Value(int64_t{5})), ColumnType::kInt64);
  EXPECT_EQ(ValueType(Value(2.5)), ColumnType::kDouble);
  EXPECT_EQ(ValueType(Value(std::string("x"))), ColumnType::kString);
  EXPECT_EQ(std::get<int64_t>(DefaultValue(ColumnType::kInt64)), 0);
  EXPECT_EQ(std::get<double>(DefaultValue(ColumnType::kDouble)), 0.0);
  EXPECT_EQ(std::get<std::string>(DefaultValue(ColumnType::kString)), "");
}

}  // namespace
}  // namespace scuba
