#include "columnar/write_buffer.h"

#include <gtest/gtest.h>

namespace scuba {
namespace {

Row MakeRow(int64_t time, const std::string& service, int64_t status) {
  Row row;
  row.SetTime(time);
  row.Set("service", service);
  row.Set("status", status);
  return row;
}

TEST(WriteBufferTest, StartsEmpty) {
  WriteBuffer buffer;
  EXPECT_TRUE(buffer.empty());
  EXPECT_FALSE(buffer.Full());
  EXPECT_TRUE(buffer.Seal(0).status().IsFailedPrecondition());
}

TEST(WriteBufferTest, RejectsRowWithoutTime) {
  WriteBuffer buffer;
  Row row;
  row.Set("service", std::string("web"));
  EXPECT_TRUE(buffer.AddRow(row).IsInvalidArgument());
  EXPECT_TRUE(buffer.empty());
}

TEST(WriteBufferTest, RejectsNonIntTime) {
  WriteBuffer buffer;
  Row row;
  row.Set("time", std::string("yesterday"));
  EXPECT_TRUE(buffer.AddRow(row).IsInvalidArgument());
}

TEST(WriteBufferTest, TracksTimeBounds) {
  WriteBuffer buffer;
  ASSERT_TRUE(buffer.AddRow(MakeRow(50, "a", 200)).ok());
  ASSERT_TRUE(buffer.AddRow(MakeRow(10, "b", 200)).ok());
  ASSERT_TRUE(buffer.AddRow(MakeRow(99, "c", 200)).ok());
  EXPECT_EQ(buffer.min_time(), 10);
  EXPECT_EQ(buffer.max_time(), 99);
  EXPECT_EQ(buffer.row_count(), 3u);
}

TEST(WriteBufferTest, SealsToRowBlockPreservingValues) {
  WriteBuffer buffer;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(buffer.AddRow(MakeRow(100 + i, "svc", 200 + i)).ok());
  }
  auto block = buffer.Seal(12345);
  ASSERT_TRUE(block.ok()) << block.status().ToString();
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ((*block)->header().row_count, 10u);
  EXPECT_EQ((*block)->header().creation_timestamp, 12345);

  std::vector<int64_t> statuses;
  ASSERT_TRUE((*block)->ColumnByName("status")->DecodeInt64(&statuses).ok());
  ASSERT_EQ(statuses.size(), 10u);
  EXPECT_EQ(statuses[0], 200);
  EXPECT_EQ(statuses[9], 209);
}

TEST(WriteBufferTest, DensifiesSparseRows) {
  WriteBuffer buffer;
  ASSERT_TRUE(buffer.AddRow(MakeRow(1, "a", 200)).ok());
  // New column appears on row 2: rows before it get defaults.
  Row with_extra = MakeRow(2, "b", 500);
  with_extra.Set("error_msg", std::string("boom"));
  ASSERT_TRUE(buffer.AddRow(with_extra).ok());
  // Row 3 omits error_msg AND status: both densify.
  Row sparse;
  sparse.SetTime(3);
  ASSERT_TRUE(buffer.AddRow(sparse).ok());

  auto block = buffer.Seal(0);
  ASSERT_TRUE(block.ok());
  std::vector<std::string> errors;
  ASSERT_TRUE(
      (*block)->ColumnByName("error_msg")->DecodeString(&errors).ok());
  EXPECT_EQ(errors, (std::vector<std::string>{"", "boom", ""}));
  std::vector<int64_t> statuses;
  ASSERT_TRUE((*block)->ColumnByName("status")->DecodeInt64(&statuses).ok());
  EXPECT_EQ(statuses, (std::vector<int64_t>{200, 500, 0}));
  std::vector<std::string> services;
  ASSERT_TRUE(
      (*block)->ColumnByName("service")->DecodeString(&services).ok());
  EXPECT_EQ(services, (std::vector<std::string>{"a", "b", ""}));
}

TEST(WriteBufferTest, TypeConflictRejectsRowAtomically) {
  WriteBuffer buffer;
  ASSERT_TRUE(buffer.AddRow(MakeRow(1, "a", 200)).ok());
  Row bad;
  bad.SetTime(2);
  bad.Set("status", std::string("five hundred"));  // was int64
  EXPECT_TRUE(buffer.AddRow(bad).IsInvalidArgument());
  EXPECT_EQ(buffer.row_count(), 1u);  // buffer unchanged
}

TEST(WriteBufferTest, FullAtRowCap) {
  WriteBuffer buffer;
  Row row = MakeRow(1, "x", 1);
  for (size_t i = 0; i < kMaxRowsPerBlock; ++i) {
    ASSERT_TRUE(buffer.AddRow(row).ok());
  }
  EXPECT_TRUE(buffer.Full());
}

TEST(WriteBufferTest, MaterializeColumn) {
  WriteBuffer buffer;
  ASSERT_TRUE(buffer.AddRow(MakeRow(1, "a", 200)).ok());
  ASSERT_TRUE(buffer.AddRow(MakeRow(2, "b", 500)).ok());

  auto services = buffer.MaterializeColumn("service");
  ASSERT_TRUE(services.has_value());
  EXPECT_EQ(std::get<std::vector<std::string>>(*services),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_FALSE(buffer.MaterializeColumn("nope").has_value());
  EXPECT_EQ(buffer.ColumnTypeOf("status"), ColumnType::kInt64);
  EXPECT_FALSE(buffer.ColumnTypeOf("nope").has_value());
}

TEST(WriteBufferTest, SealResetsForReuse) {
  WriteBuffer buffer;
  ASSERT_TRUE(buffer.AddRow(MakeRow(1, "a", 200)).ok());
  ASSERT_TRUE(buffer.Seal(0).ok());
  ASSERT_TRUE(buffer.AddRow(MakeRow(9, "z", 300)).ok());
  auto block = buffer.Seal(0);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ((*block)->header().min_time, 9);
  EXPECT_EQ((*block)->header().row_count, 1u);
}

}  // namespace
}  // namespace scuba
