// Schema evolution: "Different row blocks may have different schemas,
// although they usually have a large overlap in their columns" (§2.1).
// Blocks sealed before and after a column appears must coexist, query
// consistently, and survive the shm handoff.

#include <gtest/gtest.h>

#include "core/restore.h"
#include "core/shutdown.h"
#include "query/executor.h"
#include "test_util.h"

namespace scuba {
namespace {

using testing_util::ShmNamespace;

Row OldSchemaRow(int64_t time) {
  Row row;
  row.SetTime(time);
  row.Set("service", std::string("web"));
  return row;
}

Row NewSchemaRow(int64_t time) {
  Row row = OldSchemaRow(time);
  row.Set("region", std::string("eu"));        // column added in v2
  row.Set("duration_us", static_cast<int64_t>(1500));
  return row;
}

// A table whose first block predates the "region"/"duration_us" columns.
void FillEvolvedTable(Table* table) {
  std::vector<Row> old_rows;
  for (int i = 0; i < 100; ++i) old_rows.push_back(OldSchemaRow(100 + i));
  ASSERT_TRUE(table->AddRows(old_rows, 0).ok());
  ASSERT_TRUE(table->SealWriteBuffer(0).ok());

  std::vector<Row> new_rows;
  for (int i = 0; i < 50; ++i) new_rows.push_back(NewSchemaRow(300 + i));
  ASSERT_TRUE(table->AddRows(new_rows, 0).ok());
  ASSERT_TRUE(table->SealWriteBuffer(0).ok());
}

TEST(SchemaEvolutionTest, BlocksKeepTheirOwnSchemas) {
  Table table("events");
  FillEvolvedTable(&table);
  ASSERT_EQ(table.num_row_blocks(), 2u);
  EXPECT_FALSE(table.row_block(0)->schema().FindColumn("region").has_value());
  EXPECT_TRUE(table.row_block(1)->schema().FindColumn("region").has_value());
}

TEST(SchemaEvolutionTest, QueriesSpanOldAndNewBlocks) {
  Table table("events");
  FillEvolvedTable(&table);

  // Group by the new column: old rows land in the default ("") group.
  Query q;
  q.table = "events";
  q.group_by = {"region"};
  q.aggregates = {Count(), Sum("duration_us")};
  auto result = LeafExecutor::Execute(table, q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto out = result->Finalize(q.aggregates);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(std::get<std::string>(out[0].group_key[0]), "");
  EXPECT_EQ(out[0].aggregates[0], 100.0);
  EXPECT_EQ(out[0].aggregates[1], 0.0);  // defaults contribute 0
  EXPECT_EQ(std::get<std::string>(out[1].group_key[0]), "eu");
  EXPECT_EQ(out[1].aggregates[0], 50.0);
  EXPECT_EQ(out[1].aggregates[1], 50.0 * 1500);
}

TEST(SchemaEvolutionTest, PredicateOnNewColumnSelectsDefaultsFromOldBlocks) {
  Table table("events");
  FillEvolvedTable(&table);
  Query q;
  q.table = "events";
  q.predicates = {{"region", CompareOp::kEq, Value(std::string(""))}};
  q.aggregates = {Count()};
  auto result = LeafExecutor::Execute(table, q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->Finalize(q.aggregates)[0].aggregates[0], 100.0);
}

TEST(SchemaEvolutionTest, MixedSchemasSurviveShmHandoff) {
  ShmNamespace ns("evo1");
  LeafMap leaf_map;
  FillEvolvedTable(leaf_map.GetOrCreateTable("events"));

  ShutdownOptions soptions;
  soptions.namespace_prefix = ns.prefix();
  ShutdownStats sstats;
  ASSERT_TRUE(ShutdownToShm(&leaf_map, soptions, &sstats).ok());

  LeafMap restored;
  RestoreOptions roptions;
  roptions.namespace_prefix = ns.prefix();
  RestoreStats rstats;
  ASSERT_TRUE(RestoreFromShm(&restored, roptions, &rstats).ok());

  Table* table = restored.GetTable("events");
  ASSERT_NE(table, nullptr);
  ASSERT_EQ(table->num_row_blocks(), 2u);
  EXPECT_FALSE(
      table->row_block(0)->schema().FindColumn("region").has_value());
  EXPECT_TRUE(
      table->row_block(1)->schema().FindColumn("region").has_value());

  Query q;
  q.table = "events";
  q.group_by = {"region"};
  q.aggregates = {Count()};
  auto result = LeafExecutor::Execute(*table, q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_groups(), 2u);
}

TEST(SchemaEvolutionTest, TypeConflictAcrossBlocksIsRejectedAtQueryTime) {
  // A column that changed TYPE across blocks (int in one, string in
  // another) cannot be queried coherently; the executor must refuse
  // rather than coerce.
  Table table("events");
  {
    Row row;
    row.SetTime(1);
    row.Set("code", int64_t{200});
    ASSERT_TRUE(table.AddRows({row}, 0).ok());
    ASSERT_TRUE(table.SealWriteBuffer(0).ok());
  }
  {
    Row row;
    row.SetTime(2);
    row.Set("code", std::string("OK"));
    ASSERT_TRUE(table.AddRows({row}, 0).ok());
    ASSERT_TRUE(table.SealWriteBuffer(0).ok());
  }
  Query q;
  q.table = "events";
  q.group_by = {"code"};
  q.aggregates = {Count()};
  EXPECT_TRUE(LeafExecutor::Execute(table, q).status().IsInvalidArgument());
}

}  // namespace
}  // namespace scuba
