// Layout-version compatibility: writers emit RBC footer v2 (zone maps);
// readers must keep accepting v1 buffers — leaves restarted across the
// version boundary hand v1 columns through shared memory, and columnar
// disk backups written before the upgrade hold v1 columns forever.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "columnar/leaf_map.h"
#include "columnar/row_block.h"
#include "columnar/row_block_column.h"
#include "core/restore.h"
#include "core/shutdown.h"
#include "disk/columnar_backup.h"
#include "query/executor.h"
#include "test_util.h"
#include "util/byte_buffer.h"
#include "util/crc32c.h"

namespace scuba {
namespace {

using testing_util::MakeRows;
using testing_util::ShmNamespace;
using testing_util::TempDir;

// Rewrites a (v2) column buffer into the v1 layout: drop the zone-map
// fields, keep the trailing [uncompressed | checksum | end magic] 16
// bytes, stamp version 1, fix total bytes, recompute the CRC. This is
// byte-for-byte what the previous release's writer produced.
RowBlockColumn ToV1(const RowBlockColumn& column) {
  Slice v2 = column.AsSlice();
  EXPECT_EQ(column.version(), RowBlockColumn::kVersion);
  const size_t shrink =
      RowBlockColumn::kFooterSizeV2 - RowBlockColumn::kFooterSizeV1;
  const size_t v1_total = v2.size() - shrink;
  const size_t body = v2.size() - RowBlockColumn::kFooterSizeV2;

  std::unique_ptr<uint8_t[]> buf(new uint8_t[v1_total]);
  std::memcpy(buf.get(), v2.data(), body);
  std::memcpy(buf.get() + body, v2.data() + v2.size() - 16, 16);
  buf[4] = 1;  // version (u16 little-endian at offset 4)
  buf[5] = 0;
  ByteBuffer::EncodeU64(buf.get() + 16, v1_total);  // total bytes
  uint32_t crc = crc32c::Value(buf.get(), v1_total - 8);
  ByteBuffer::EncodeU32(buf.get() + v1_total - 8, crc32c::Mask(crc));

  auto v1 = RowBlockColumn::FromBuffer(std::move(buf), v1_total);
  EXPECT_TRUE(v1.ok()) << v1.status().ToString();
  return std::move(v1).value();
}

// Rebuilds `block` with every column converted to the v1 layout.
std::unique_ptr<RowBlock> BlockToV1(const RowBlock& block) {
  std::vector<std::unique_ptr<RowBlockColumn>> columns;
  uint64_t size_bytes = 0;
  for (size_t c = 0; c < block.num_columns(); ++c) {
    columns.push_back(
        std::make_unique<RowBlockColumn>(ToV1(*block.column(c))));
    size_bytes += columns.back()->total_bytes();
  }
  RowBlockHeader header = block.header();
  header.size_bytes = size_bytes;  // v1 footers are 24 bytes smaller
  auto rebuilt =
      RowBlock::FromParts(header, block.schema(), std::move(columns));
  EXPECT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  return std::move(rebuilt).value();
}

TEST(LayoutVersionTest, WriterEmitsV2WithZoneMaps) {
  RowBlockColumn ints = RowBlockColumn::BuildInt64({5, -3, 12, 7});
  EXPECT_EQ(ints.version(), 2);
  ASSERT_TRUE(ints.HasZoneMap());
  int64_t mn = 0, mx = 0;
  ASSERT_TRUE(ints.ZoneRangeInt64(&mn, &mx));
  EXPECT_EQ(mn, -3);
  EXPECT_EQ(mx, 12);
  EXPECT_FALSE(ints.ZoneRangeDouble(nullptr, nullptr));

  RowBlockColumn dbls = RowBlockColumn::BuildDouble({1.5, -2.25, 0.0});
  ASSERT_TRUE(dbls.HasZoneMap());
  double dmn = 0, dmx = 0;
  ASSERT_TRUE(dbls.ZoneRangeDouble(&dmn, &dmx));
  EXPECT_EQ(dmn, -2.25);
  EXPECT_EQ(dmx, 1.5);

  // NaN poisons min/max comparisons: no zone map, never pruned.
  RowBlockColumn nans =
      RowBlockColumn::BuildDouble({1.0, std::nan(""), 2.0});
  EXPECT_FALSE(nans.HasZoneMap());

  // Strings and empty columns carry no zone.
  EXPECT_FALSE(RowBlockColumn::BuildString({"a", "b"}).HasZoneMap());
  EXPECT_FALSE(RowBlockColumn::BuildInt64({}).HasZoneMap());
}

TEST(LayoutVersionTest, V1BufferValidatesAndDecodes) {
  std::vector<int64_t> values = {100, 200, 300, 250, 150};
  RowBlockColumn v1 = ToV1(RowBlockColumn::BuildInt64(values));

  EXPECT_EQ(v1.version(), 1);
  EXPECT_TRUE(v1.Validate().ok());
  EXPECT_FALSE(v1.HasZoneMap());
  int64_t mn = 0, mx = 0;
  EXPECT_FALSE(v1.ZoneRangeInt64(&mn, &mx));
  EXPECT_EQ(v1.uncompressed_bytes(), values.size() * 8);

  std::vector<int64_t> decoded;
  ASSERT_TRUE(v1.DecodeInt64(&decoded).ok());
  EXPECT_EQ(decoded, values);
}

TEST(LayoutVersionTest, V1StringColumnKeepsDictionaryAccess) {
  std::vector<std::string> values;
  for (int i = 0; i < 200; ++i) values.push_back("svc_" + std::to_string(i % 5));
  RowBlockColumn v1 = ToV1(RowBlockColumn::BuildString(values));

  std::vector<std::string> decoded;
  ASSERT_TRUE(v1.DecodeString(&decoded).ok());
  EXPECT_EQ(decoded, values);

  // The dictionary view comes from the compression chain, not the footer
  // version: v1 dict-encoded columns still feed the vectorized filter.
  std::vector<std::string> dict;
  std::vector<uint32_t> codes;
  ASSERT_TRUE(v1.DecodeStringDictionary(&dict, &codes).ok());
  ASSERT_EQ(codes.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(dict[codes[i]], values[i]);
  }
}

// A table whose sealed block predates the zone-map footer: queries work,
// and the block is simply never zone-pruned (blocks_pruned stays 0 for a
// predicate that WOULD prune the same data in v2 form).
TEST(LayoutVersionTest, V1BlocksQueryWithoutZonePruning) {
  Table v2_table("t");
  ASSERT_TRUE(v2_table.AddRows(MakeRows(300, 1000), 0).ok());
  ASSERT_TRUE(v2_table.SealWriteBuffer(0).ok());

  Table v1_table("t");
  v1_table.AdoptRowBlock(BlockToV1(*v2_table.row_block(0)));

  Query q;
  q.table = "t";
  // status is 200/500 only: eq 999 would zone-prune a v2 block.
  q.predicates = {{"status", CompareOp::kEq, Value(int64_t{999})}};
  q.aggregates = {Count()};

  auto v2_result = LeafExecutor::Execute(v2_table, q);
  ASSERT_TRUE(v2_result.ok());
  EXPECT_EQ(v2_result->blocks_pruned, 1u);
  EXPECT_EQ(v2_result->rows_matched, 0u);

  auto v1_result = LeafExecutor::Execute(v1_table, q);
  ASSERT_TRUE(v1_result.ok());
  EXPECT_EQ(v1_result->blocks_pruned, 0u);  // no zone map: must scan
  EXPECT_EQ(v1_result->blocks_scanned, 1u);
  EXPECT_EQ(v1_result->rows_matched, 0u);

  // And a matching query returns identical data through both layouts.
  Query match;
  match.table = "t";
  match.predicates = {{"status", CompareOp::kEq, Value(int64_t{500})}};
  match.group_by = {"service"};
  match.aggregates = {Count(), Avg("latency_ms")};
  auto a = LeafExecutor::Execute(v2_table, match);
  auto b = LeafExecutor::Execute(v1_table, match);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto rows_a = a->Finalize(match.aggregates);
  auto rows_b = b->Finalize(match.aggregates);
  ASSERT_EQ(rows_a.size(), rows_b.size());
  for (size_t r = 0; r < rows_a.size(); ++r) {
    EXPECT_EQ(rows_a[r].group_key, rows_b[r].group_key);
    EXPECT_EQ(rows_a[r].aggregates, rows_b[r].aggregates);
  }
}

TEST(LayoutVersionTest, V1BlocksRestoreFromShm) {
  ShmNamespace ns("v1shm");
  LeafMap leaf_map;
  {
    Table staging("t");
    ASSERT_TRUE(staging.AddRows(MakeRows(400, 1000), 0).ok());
    ASSERT_TRUE(staging.SealWriteBuffer(0).ok());
    Table* table = leaf_map.GetOrCreateTable("t");
    table->AdoptRowBlock(BlockToV1(*staging.row_block(0)));
  }
  uint64_t rows_before = leaf_map.TotalRowCount();

  ShutdownOptions sopt;
  sopt.namespace_prefix = ns.prefix();
  ShutdownStats sstats;
  ASSERT_TRUE(ShutdownToShm(&leaf_map, sopt, &sstats).ok());

  LeafMap restored;
  RestoreOptions ropt;
  ropt.namespace_prefix = ns.prefix();
  RestoreStats rstats;
  ASSERT_TRUE(RestoreFromShm(&restored, ropt, &rstats).ok());
  EXPECT_EQ(restored.TotalRowCount(), rows_before);

  const RowBlock* block = restored.GetTable("t")->row_block(0);
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(block->ColumnByName("time")->version(), 1);
  EXPECT_TRUE(block->ColumnByName("time")->Validate().ok());

  Query q;
  q.table = "t";
  q.group_by = {"service"};
  q.aggregates = {Count()};
  auto result = LeafExecutor::Execute(*restored.GetTable("t"), q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows_matched, rows_before);
}

TEST(LayoutVersionTest, V1BlocksRecoverFromColumnarDiskBackup) {
  TempDir dir("v1disk");
  {
    Table staging("events");
    ASSERT_TRUE(staging.AddRows(MakeRows(350, 2000), 0).ok());
    ASSERT_TRUE(staging.SealWriteBuffer(0).ok());
    std::unique_ptr<RowBlock> v1_block = BlockToV1(*staging.row_block(0));

    ColumnarBackupWriter writer(dir.path());
    ASSERT_TRUE(writer.Init().ok());
    ASSERT_TRUE(writer.OnBlockSealed("events", *v1_block).ok());
    ASSERT_TRUE(writer.SyncAll().ok());
  }

  Table recovered("events");
  ColumnarBackupReader::Options options;
  ColumnarBackupReader::Stats stats;
  ASSERT_TRUE(ColumnarBackupReader::RecoverTable(dir.path(), "events",
                                                 &recovered, options, 0,
                                                 &stats)
                  .ok());
  ASSERT_EQ(recovered.num_row_blocks(), 1u);
  EXPECT_EQ(recovered.row_block(0)->ColumnByName("time")->version(), 1);
  EXPECT_EQ(recovered.RowCount(), 350u);

  Query q;
  q.table = "events";
  q.predicates = {{"status", CompareOp::kGe, Value(int64_t{500})}};
  q.aggregates = {Count()};
  auto result = LeafExecutor::Execute(recovered, q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto scalar = LeafExecutor::ExecuteScalar(recovered, q);
  ASSERT_TRUE(scalar.ok());
  EXPECT_EQ(result->rows_matched, scalar->rows_matched);
}

}  // namespace
}  // namespace scuba
