#include "columnar/row_block_column.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "util/random.h"

namespace scuba {
namespace {

TEST(RowBlockColumnTest, Int64BuildAndDecode) {
  std::vector<int64_t> values = {1, 2, 3, 1000000, -5};
  RowBlockColumn col = RowBlockColumn::BuildInt64(values);
  EXPECT_EQ(col.type(), ColumnType::kInt64);
  EXPECT_EQ(col.item_count(), 5u);
  EXPECT_TRUE(col.Validate().ok());

  std::vector<int64_t> out;
  ASSERT_TRUE(col.DecodeInt64(&out).ok());
  EXPECT_EQ(out, values);
}

TEST(RowBlockColumnTest, DoubleBuildAndDecode) {
  std::vector<double> values = {0.5, -1.25, 3e10};
  RowBlockColumn col = RowBlockColumn::BuildDouble(values);
  std::vector<double> out;
  ASSERT_TRUE(col.DecodeDouble(&out).ok());
  EXPECT_EQ(out, values);
  EXPECT_EQ(col.uncompressed_bytes(), values.size() * 8);
}

TEST(RowBlockColumnTest, StringBuildAndDecode) {
  std::vector<std::string> values = {"a", "bb", "a", "", "ccc"};
  RowBlockColumn col = RowBlockColumn::BuildString(values);
  std::vector<std::string> out;
  ASSERT_TRUE(col.DecodeString(&out).ok());
  EXPECT_EQ(out, values);
}

TEST(RowBlockColumnTest, TypeMismatchedDecodeFails) {
  RowBlockColumn col = RowBlockColumn::BuildInt64({1, 2, 3});
  std::vector<double> doubles;
  EXPECT_TRUE(col.DecodeDouble(&doubles).IsInvalidArgument());
  std::vector<std::string> strings;
  EXPECT_TRUE(col.DecodeString(&strings).IsInvalidArgument());
}

// THE property the paper's mechanism depends on: the whole column is one
// position-independent buffer. memcpy it anywhere; it still validates and
// decodes identically (§2.1, §4.4).
TEST(RowBlockColumnTest, SingleMemcpyRelocation) {
  std::vector<std::string> values;
  Random random(5);
  for (int i = 0; i < 10000; ++i) {
    values.push_back("endpoint_" + std::to_string(random.Skewed(40)));
  }
  RowBlockColumn original = RowBlockColumn::BuildString(values);

  Slice bytes = original.AsSlice();
  std::unique_ptr<uint8_t[]> relocated(new uint8_t[bytes.size()]);
  std::memcpy(relocated.get(), bytes.data(), bytes.size());

  auto adopted = RowBlockColumn::FromBuffer(std::move(relocated),
                                            bytes.size());
  ASSERT_TRUE(adopted.ok()) << adopted.status().ToString();
  std::vector<std::string> out;
  ASSERT_TRUE(adopted->DecodeString(&out).ok());
  EXPECT_EQ(out, values);
}

TEST(RowBlockColumnTest, FromBufferRejectsBadMagic) {
  RowBlockColumn col = RowBlockColumn::BuildInt64({1, 2, 3});
  Slice bytes = col.AsSlice();
  std::unique_ptr<uint8_t[]> copy(new uint8_t[bytes.size()]);
  std::memcpy(copy.get(), bytes.data(), bytes.size());
  copy[0] ^= 0xFF;
  auto adopted = RowBlockColumn::FromBuffer(std::move(copy), bytes.size());
  EXPECT_TRUE(adopted.status().IsCorruption());
}

TEST(RowBlockColumnTest, ChecksumCatchesPayloadBitFlip) {
  std::vector<int64_t> values;
  for (int i = 0; i < 1000; ++i) values.push_back(i * 7);
  RowBlockColumn col = RowBlockColumn::BuildInt64(values);
  Slice bytes = col.AsSlice();
  std::unique_ptr<uint8_t[]> copy(new uint8_t[bytes.size()]);
  std::memcpy(copy.get(), bytes.data(), bytes.size());
  copy[bytes.size() / 2] ^= 0x01;  // flip one payload bit
  auto adopted = RowBlockColumn::FromBuffer(std::move(copy), bytes.size());
  ASSERT_FALSE(adopted.ok());
  EXPECT_TRUE(adopted.status().IsCorruption());
}

TEST(RowBlockColumnTest, UncheckedAdoptionSkipsCrc) {
  RowBlockColumn col = RowBlockColumn::BuildInt64({1, 2, 3});
  Slice bytes = col.AsSlice();
  std::unique_ptr<uint8_t[]> copy(new uint8_t[bytes.size()]);
  std::memcpy(copy.get(), bytes.data(), bytes.size());
  // Corrupt one payload byte: structural checks pass, CRC would fail.
  copy[RowBlockColumn::kHeaderSize] ^= 0x01;
  auto adopted = RowBlockColumn::FromBuffer(std::move(copy), bytes.size(),
                                            /*verify_checksum=*/false);
  EXPECT_TRUE(adopted.ok());
}

TEST(RowBlockColumnTest, SizeMismatchIsCorruption) {
  RowBlockColumn col = RowBlockColumn::BuildInt64({1, 2, 3});
  Slice bytes = col.AsSlice();
  std::unique_ptr<uint8_t[]> copy(new uint8_t[bytes.size() + 8]);
  std::memcpy(copy.get(), bytes.data(), bytes.size());
  auto adopted = RowBlockColumn::FromBuffer(std::move(copy),
                                            bytes.size() + 8);
  EXPECT_TRUE(adopted.status().IsCorruption());
}

TEST(RowBlockColumnTest, TooSmallBufferIsCorruption) {
  std::unique_ptr<uint8_t[]> tiny(new uint8_t[8]());
  EXPECT_TRUE(RowBlockColumn::FromBuffer(std::move(tiny), 8)
                  .status()
                  .IsCorruption());
}

TEST(RowBlockColumnTest, ValidateBufferInPlace) {
  RowBlockColumn col = RowBlockColumn::BuildDouble({1.0, 2.0});
  EXPECT_TRUE(RowBlockColumn::ValidateBuffer(col.AsSlice()).ok());
}

TEST(RowBlockColumnTest, EmptyColumn) {
  RowBlockColumn col = RowBlockColumn::BuildInt64({});
  EXPECT_EQ(col.item_count(), 0u);
  EXPECT_TRUE(col.Validate().ok());
  std::vector<int64_t> out = {99};
  ASSERT_TRUE(col.DecodeInt64(&out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(RowBlockColumnTest, CompressionChainIsRecorded) {
  std::vector<int64_t> timestamps;
  for (int i = 0; i < 5000; ++i) timestamps.push_back(1400000000 + i);
  RowBlockColumn col = RowBlockColumn::BuildInt64(timestamps);
  EXPECT_GE(column_codec::ChainLength(col.compression_chain()), 2);
}

}  // namespace
}  // namespace scuba
