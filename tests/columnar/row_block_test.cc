#include "columnar/row_block.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace scuba {
namespace {

Schema TwoColumnSchema() {
  Schema schema;
  schema.AddColumn("time", ColumnType::kInt64);
  schema.AddColumn("service", ColumnType::kString);
  return schema;
}

std::unique_ptr<RowBlock> MakeBlock(int64_t t0 = 100, size_t rows = 4) {
  std::vector<int64_t> times;
  std::vector<std::string> services;
  for (size_t i = 0; i < rows; ++i) {
    times.push_back(t0 + static_cast<int64_t>(i));
    services.push_back(i % 2 == 0 ? "web" : "api");
  }
  auto block = RowBlock::Build(
      TwoColumnSchema(), {ColumnValues(times), ColumnValues(services)}, 999);
  EXPECT_TRUE(block.ok()) << block.status().ToString();
  return std::move(block).value();
}

TEST(RowBlockTest, HeaderCapturesTimeRangeAndCounts) {
  auto block = MakeBlock(100, 10);
  EXPECT_EQ(block->header().row_count, 10u);
  EXPECT_EQ(block->header().min_time, 100);
  EXPECT_EQ(block->header().max_time, 109);
  EXPECT_EQ(block->header().creation_timestamp, 999);
  EXPECT_GT(block->header().size_bytes, 0u);
  EXPECT_EQ(block->header().size_bytes, block->MemoryBytes());
}

TEST(RowBlockTest, RequiresTimeColumn) {
  Schema schema;
  schema.AddColumn("value", ColumnType::kInt64);
  auto block = RowBlock::Build(
      schema, {ColumnValues(std::vector<int64_t>{1})}, 0);
  EXPECT_TRUE(block.status().IsInvalidArgument());
}

TEST(RowBlockTest, RequiresInt64TimeColumn) {
  Schema schema;
  schema.AddColumn("time", ColumnType::kString);
  auto block = RowBlock::Build(
      schema, {ColumnValues(std::vector<std::string>{"x"})}, 0);
  EXPECT_TRUE(block.status().IsInvalidArgument());
}

TEST(RowBlockTest, RejectsRaggedColumns) {
  auto block = RowBlock::Build(
      TwoColumnSchema(),
      {ColumnValues(std::vector<int64_t>{1, 2}),
       ColumnValues(std::vector<std::string>{"only-one"})},
      0);
  EXPECT_TRUE(block.status().IsInvalidArgument());
}

TEST(RowBlockTest, RejectsEmptyAndOversized) {
  auto empty = RowBlock::Build(
      TwoColumnSchema(),
      {ColumnValues(std::vector<int64_t>{}),
       ColumnValues(std::vector<std::string>{})},
      0);
  EXPECT_TRUE(empty.status().IsInvalidArgument());

  std::vector<int64_t> too_many(kMaxRowsPerBlock + 1, 1);
  std::vector<std::string> strs(kMaxRowsPerBlock + 1, "x");
  auto oversized = RowBlock::Build(
      TwoColumnSchema(), {ColumnValues(too_many), ColumnValues(strs)}, 0);
  EXPECT_TRUE(oversized.status().IsInvalidArgument());
}

TEST(RowBlockTest, RejectsTypeMismatchVsSchema) {
  auto block = RowBlock::Build(
      TwoColumnSchema(),
      {ColumnValues(std::vector<int64_t>{1}),
       ColumnValues(std::vector<int64_t>{2})},  // schema says string
      0);
  EXPECT_TRUE(block.status().IsInvalidArgument());
}

TEST(RowBlockTest, ColumnByName) {
  auto block = MakeBlock();
  EXPECT_NE(block->ColumnByName("service"), nullptr);
  EXPECT_EQ(block->ColumnByName("missing"), nullptr);
  EXPECT_EQ(block->ColumnByName("service")->type(), ColumnType::kString);
}

TEST(RowBlockTest, TimeRangeOverlap) {
  auto block = MakeBlock(100, 10);  // [100, 109]
  EXPECT_TRUE(block->OverlapsTimeRange(0, 100));
  EXPECT_TRUE(block->OverlapsTimeRange(109, 200));
  EXPECT_TRUE(block->OverlapsTimeRange(104, 105));
  EXPECT_TRUE(block->OverlapsTimeRange(0, 1000));
  EXPECT_FALSE(block->OverlapsTimeRange(0, 99));
  EXPECT_FALSE(block->OverlapsTimeRange(110, 1000));
}

TEST(RowBlockTest, MetaSerializationRoundTrip) {
  auto block = MakeBlock(50, 7);
  ByteBuffer buf;
  block->SerializeMeta(&buf);
  Slice in = buf.AsSlice();
  auto meta = RowBlock::ParseMeta(&in);
  ASSERT_TRUE(meta.ok()) << meta.status().ToString();
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(meta->header.row_count, 7u);
  EXPECT_EQ(meta->header.min_time, 50);
  EXPECT_EQ(meta->header.max_time, 56);
  EXPECT_EQ(meta->schema, block->schema());
  ASSERT_EQ(meta->column_sizes.size(), 2u);
  EXPECT_EQ(meta->column_sizes[0], block->column(0)->total_bytes());
}

TEST(RowBlockTest, FromPartsReassembles) {
  auto block = MakeBlock(10, 5);
  RowBlockHeader header = block->header();
  Schema schema = block->schema();
  std::vector<std::unique_ptr<RowBlockColumn>> columns;
  columns.push_back(block->ReleaseColumn(0));
  columns.push_back(block->ReleaseColumn(1));

  auto rebuilt = RowBlock::FromParts(header, schema, std::move(columns));
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  std::vector<int64_t> times;
  ASSERT_TRUE((*rebuilt)->ColumnByName("time")->DecodeInt64(&times).ok());
  EXPECT_EQ(times, (std::vector<int64_t>{10, 11, 12, 13, 14}));
}

TEST(RowBlockTest, FromPartsRejectsCountMismatch) {
  auto block = MakeBlock(10, 5);
  RowBlockHeader header = block->header();
  header.row_count = 4;  // lie
  Schema schema = block->schema();
  std::vector<std::unique_ptr<RowBlockColumn>> columns;
  columns.push_back(block->ReleaseColumn(0));
  columns.push_back(block->ReleaseColumn(1));
  EXPECT_TRUE(RowBlock::FromParts(header, schema, std::move(columns))
                  .status()
                  .IsCorruption());
}

TEST(RowBlockTest, ReleaseColumnFreesMemoryAccounting) {
  auto block = MakeBlock(10, 5);
  uint64_t before = block->MemoryBytes();
  auto released = block->ReleaseColumn(0);
  EXPECT_NE(released, nullptr);
  EXPECT_LT(block->MemoryBytes(), before);
  EXPECT_EQ(block->column(0), nullptr);
}

TEST(RowBlockTest, ParseMetaRejectsTruncation) {
  auto block = MakeBlock();
  ByteBuffer buf;
  block->SerializeMeta(&buf);
  for (size_t cut = 1; cut < buf.size(); cut += 5) {
    Slice in(buf.data(), buf.size() - cut);
    EXPECT_FALSE(RowBlock::ParseMeta(&in).ok()) << "cut " << cut;
  }
}

}  // namespace
}  // namespace scuba
