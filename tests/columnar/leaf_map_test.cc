#include "columnar/leaf_map.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace scuba {
namespace {

using testing_util::MakeRows;

TEST(LeafMapTest, CreateAndGet) {
  LeafMap map;
  auto table = map.CreateTable("events");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->name(), "events");
  EXPECT_EQ(map.GetTable("events"), *table);
  EXPECT_EQ(map.GetTable("other"), nullptr);
  EXPECT_EQ(map.num_tables(), 1u);
}

TEST(LeafMapTest, DuplicateCreateFails) {
  LeafMap map;
  ASSERT_TRUE(map.CreateTable("events").ok());
  EXPECT_TRUE(map.CreateTable("events").status().IsAlreadyExists());
}

TEST(LeafMapTest, GetOrCreate) {
  LeafMap map;
  Table* a = map.GetOrCreateTable("events");
  Table* b = map.GetOrCreateTable("events");
  EXPECT_EQ(a, b);
  EXPECT_EQ(map.num_tables(), 1u);
}

TEST(LeafMapTest, DropTable) {
  LeafMap map;
  ASSERT_TRUE(map.CreateTable("events").ok());
  EXPECT_TRUE(map.DropTable("events").ok());
  EXPECT_TRUE(map.DropTable("events").IsNotFound());
  EXPECT_EQ(map.num_tables(), 0u);
}

TEST(LeafMapTest, NamesPreserveCreationOrder) {
  LeafMap map;
  ASSERT_TRUE(map.CreateTable("zeta").ok());
  ASSERT_TRUE(map.CreateTable("alpha").ok());
  ASSERT_TRUE(map.CreateTable("mid").ok());
  EXPECT_EQ(map.TableNames(),
            (std::vector<std::string>{"zeta", "alpha", "mid"}));
}

TEST(LeafMapTest, TotalsAggregateAcrossTables) {
  LeafMap map;
  Table* a = map.GetOrCreateTable("a");
  Table* b = map.GetOrCreateTable("b");
  ASSERT_TRUE(a->AddRows(MakeRows(30), 0).ok());
  ASSERT_TRUE(b->AddRows(MakeRows(70), 0).ok());
  EXPECT_EQ(map.TotalRowCount(), 100u);
  EXPECT_GT(map.TotalMemoryBytes(), 0u);
}

TEST(LeafMapTest, ReleaseAndAdopt) {
  LeafMap map;
  Table* a = map.GetOrCreateTable("a");
  ASSERT_TRUE(a->AddRows(MakeRows(5), 0).ok());
  auto released = map.ReleaseTable("a");
  ASSERT_NE(released, nullptr);
  EXPECT_EQ(map.num_tables(), 0u);
  ASSERT_TRUE(map.AdoptTable(std::move(released)).ok());
  EXPECT_EQ(map.TotalRowCount(), 5u);
  EXPECT_EQ(map.ReleaseTable("missing"), nullptr);
}

TEST(LeafMapTest, AdoptRejectsDuplicateAndNull) {
  LeafMap map;
  ASSERT_TRUE(map.CreateTable("a").ok());
  EXPECT_TRUE(
      map.AdoptTable(std::make_unique<Table>("a")).IsAlreadyExists());
  EXPECT_TRUE(map.AdoptTable(nullptr).IsInvalidArgument());
}

TEST(LeafMapTest, ClearDropsEverything) {
  LeafMap map;
  map.GetOrCreateTable("a");
  map.GetOrCreateTable("b");
  map.Clear();
  EXPECT_EQ(map.num_tables(), 0u);
}

}  // namespace
}  // namespace scuba
