#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace scuba {
namespace obs {
namespace {

TEST(ObsTracerTest, SequentialRootSpansAreOrdered) {
  PhaseTracer tracer;
  {
    PhaseTracer::Span a(&tracer, "phase_a");
  }
  {
    PhaseTracer::Span b(&tracer, "phase_b");
  }
  std::vector<TraceSpan> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "phase_a");
  EXPECT_EQ(spans[1].name, "phase_b");
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[1].depth, 0);
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_LE(spans[0].end_micros, spans[1].start_micros + 1);
  EXPECT_LE(spans[0].start_micros, spans[0].end_micros);
}

TEST(ObsTracerTest, SpansNestPerThread) {
  PhaseTracer tracer;
  {
    PhaseTracer::Span outer(&tracer, "outer");
    {
      PhaseTracer::Span inner(&tracer, "inner");
      {
        PhaseTracer::Span leaf(&tracer, "leaf");
      }
    }
  }
  std::vector<TraceSpan> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[1].parent, 0);
  EXPECT_EQ(spans[2].name, "leaf");
  EXPECT_EQ(spans[2].depth, 2);
  EXPECT_EQ(spans[2].parent, 1);

  // A sibling after the nest goes back to root depth.
  {
    PhaseTracer::Span sibling(&tracer, "sibling");
  }
  spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[3].depth, 0);
  EXPECT_EQ(spans[3].parent, -1);
}

TEST(ObsTracerTest, BytesAttributedOnEnd) {
  PhaseTracer tracer;
  {
    PhaseTracer::Span span(&tracer, "copy");
    span.AddBytes(100);
    span.AddBytes(23);
  }
  std::vector<TraceSpan> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].bytes, 123u);
}

TEST(ObsTracerTest, EndIsIdempotentAndNullTracerIsNoop) {
  PhaseTracer tracer;
  PhaseTracer::Span span(&tracer, "once");
  span.End();
  span.End();  // second End must not corrupt the open-span stack
  EXPECT_EQ(tracer.Snapshot().size(), 1u);

  PhaseTracer::Span null_span(nullptr, "nothing");
  null_span.AddBytes(5);
  null_span.End();  // all no-ops
}

TEST(ObsTracerTest, AddCompletedSpanInsertsRootSpan) {
  PhaseTracer tracer;
  tracer.AddCompletedSpan("disk_read", 10, 250, 4096);
  std::vector<TraceSpan> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "disk_read");
  EXPECT_EQ(spans[0].start_micros, 10);
  EXPECT_EQ(spans[0].end_micros, 250);
  EXPECT_EQ(spans[0].bytes, 4096u);
  EXPECT_EQ(spans[0].depth, 0);
}

TEST(ObsTracerTest, RootCoverageSumsOnlyRootSpans) {
  PhaseTracer tracer;
  tracer.AddCompletedSpan("a", 0, 100);
  tracer.AddCompletedSpan("b", 100, 250);
  {
    // Live nested spans: only the root counts toward coverage.
    PhaseTracer::Span outer(&tracer, "outer");
    PhaseTracer::Span inner(&tracer, "inner");
  }
  int64_t coverage = tracer.RootCoverageMicros();
  EXPECT_GE(coverage, 250);
  // The nested inner span must not be double counted: coverage is at most
  // the two synthetic roots plus outer's (tiny) duration.
  EXPECT_LE(coverage, 250 + tracer.ElapsedMicros());
}

TEST(ObsTracerTest, ConcurrentSpansFromWorkersDoNotNestAcrossThreads) {
  PhaseTracer tracer;
  PhaseTracer::Span root(&tracer, "root");
  std::vector<std::thread> workers;
  for (int i = 0; i < 4; ++i) {
    workers.emplace_back([&tracer, i] {
      PhaseTracer::Span span(&tracer, "worker_" + std::to_string(i));
    });
  }
  for (auto& w : workers) w.join();
  root.End();

  std::vector<TraceSpan> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 5u);
  // Worker spans opened on other threads are roots of their own threads,
  // not children of "root" (which lives on the main thread).
  for (const TraceSpan& s : spans) {
    if (s.name != "root") {
      EXPECT_EQ(s.parent, -1) << s.name;
      EXPECT_NE(s.thread, spans[0].thread) << s.name;
    }
  }
}

TEST(ObsTracerTest, ToJsonListsSpansAndElapsed) {
  PhaseTracer tracer;
  tracer.AddCompletedSpan("seal_buffers", 0, 42, 7);
  std::string json = tracer.ToJson();
  EXPECT_NE(json.find("\"elapsed_micros\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("\"seal_buffers\""), std::string::npos);
  EXPECT_NE(json.find("\"duration_micros\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"bytes\": 7"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace scuba
