#include "obs/stats_exporter.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "columnar/row.h"
#include "obs/metrics.h"

namespace scuba {
namespace obs {
namespace {

const Value* FindField(const Row& row, const std::string& name) {
  for (const auto& [k, v] : row.fields) {
    if (k == name) return &v;
  }
  return nullptr;
}

int64_t IntField(const Row& row, const std::string& name) {
  const Value* v = FindField(row, name);
  EXPECT_NE(v, nullptr) << "missing field " << name;
  if (v == nullptr || !std::holds_alternative<int64_t>(*v)) return -1;
  return std::get<int64_t>(*v);
}

std::string StringField(const Row& row, const std::string& name) {
  const Value* v = FindField(row, name);
  if (v == nullptr || !std::holds_alternative<std::string>(*v)) return "";
  return std::get<std::string>(*v);
}

/// An exporter over its own private registry, sinking into a vector.
struct ExporterFixture {
  MetricsRegistry registry;
  std::vector<Row> sunk;
  std::vector<size_t> batch_sizes;
  StatsExporter exporter;

  explicit ExporterFixture(int64_t period_millis = 3600 * 1000)
      : exporter(MakeOptions(period_millis),
                 [this](const std::string& table, const std::vector<Row>& rows) {
                   EXPECT_EQ(table, std::string(kStatsTableName));
                   batch_sizes.push_back(rows.size());
                   sunk.insert(sunk.end(), rows.begin(), rows.end());
                   return Status::OK();
                 }) {}

  StatsExporterOptions MakeOptions(int64_t period_millis) {
    StatsExporterOptions o;
    o.period_millis = period_millis;
    o.generation = 3;
    o.leaf_id = 7;
    o.registry = &registry;
    o.now_unix_seconds = [] { return int64_t{1700000000}; };
    return o;
  }
};

TEST(StatsExporterTest, SystemTableNames) {
  EXPECT_TRUE(IsSystemTable("__scuba_stats"));
  EXPECT_TRUE(IsSystemTable("__scuba"));
  EXPECT_TRUE(IsSystemTable("__scuba_anything"));
  EXPECT_FALSE(IsSystemTable("requests"));
  EXPECT_FALSE(IsSystemTable("_scuba"));
  EXPECT_FALSE(IsSystemTable("scuba_stats"));
}

TEST(StatsExporterTest, CountersExportAsDeltas) {
  ExporterFixture fx;
  Counter* c = fx.registry.GetCounter("scuba.test.widgets");
  c->Add(10);
  ASSERT_TRUE(fx.exporter.ExportOnce().ok());
  ASSERT_EQ(fx.sunk.size(), 1u);
  EXPECT_EQ(StringField(fx.sunk[0], "metric"), "scuba.test.widgets");
  EXPECT_EQ(StringField(fx.sunk[0], "kind"), "counter");
  EXPECT_EQ(IntField(fx.sunk[0], "value"), 10);
  EXPECT_EQ(IntField(fx.sunk[0], "generation"), 3);
  EXPECT_EQ(IntField(fx.sunk[0], "leaf"), 7);

  // Second cycle sees only the delta, with a rate (time has passed since
  // the first snapshot stamp; back-to-back cycles in the same millisecond
  // would omit it, hence the sleep).
  c->Add(5);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(fx.exporter.ExportOnce().ok());
  ASSERT_EQ(fx.sunk.size(), 2u);
  EXPECT_EQ(IntField(fx.sunk[1], "value"), 5);
  EXPECT_NE(FindField(fx.sunk[1], "rate"), nullptr);
}

TEST(StatsExporterTest, NoMovementNoRows) {
  ExporterFixture fx;
  fx.registry.GetCounter("scuba.test.static")->Add(1);
  ASSERT_TRUE(fx.exporter.ExportOnce().ok());
  ASSERT_TRUE(fx.exporter.ExportOnce().ok());
  ASSERT_TRUE(fx.exporter.ExportOnce().ok());
  // Only the first cycle produced a row; idle cycles are row-free.
  EXPECT_EQ(fx.sunk.size(), 1u);
  EXPECT_EQ(fx.exporter.cycles(), 3u);
}

TEST(StatsExporterTest, GaugesExportOnChange) {
  ExporterFixture fx;
  Gauge* g = fx.registry.GetGauge("scuba.test.level");
  g->Set(42);
  ASSERT_TRUE(fx.exporter.ExportOnce().ok());
  ASSERT_EQ(fx.sunk.size(), 1u);  // first sight
  EXPECT_EQ(StringField(fx.sunk[0], "kind"), "gauge");
  EXPECT_EQ(IntField(fx.sunk[0], "value"), 42);

  ASSERT_TRUE(fx.exporter.ExportOnce().ok());
  EXPECT_EQ(fx.sunk.size(), 1u);  // unchanged level, no row

  g->Set(41);
  ASSERT_TRUE(fx.exporter.ExportOnce().ok());
  ASSERT_EQ(fx.sunk.size(), 2u);
  EXPECT_EQ(IntField(fx.sunk[1], "value"), 41);
}

TEST(StatsExporterTest, HistogramsExportDeltaVolumeAndPercentiles) {
  ExporterFixture fx;
  Histogram* h = fx.registry.GetHistogram("scuba.test.latency");
  for (int i = 0; i < 100; ++i) h->Record(1000);
  ASSERT_TRUE(fx.exporter.ExportOnce().ok());
  ASSERT_EQ(fx.sunk.size(), 1u);
  EXPECT_EQ(StringField(fx.sunk[0], "kind"), "histogram");
  EXPECT_EQ(IntField(fx.sunk[0], "count"), 100);
  EXPECT_EQ(IntField(fx.sunk[0], "sum"), 100 * 1000);
  const Value* p50 = FindField(fx.sunk[0], "p50");
  ASSERT_NE(p50, nullptr);
  EXPECT_DOUBLE_EQ(std::get<double>(*p50), 1000.0);

  // Next cycle exports only the new observations' volume.
  h->Record(2000);
  ASSERT_TRUE(fx.exporter.ExportOnce().ok());
  ASSERT_EQ(fx.sunk.size(), 2u);
  EXPECT_EQ(IntField(fx.sunk[1], "count"), 1);
  EXPECT_EQ(IntField(fx.sunk[1], "sum"), 2000);
}

TEST(StatsExporterTest, RestartEventRow) {
  ExporterFixture fx;
  ASSERT_TRUE(fx.exporter.ExportRestartEvent("alive", "shared_memory",
                                             123456).ok());
  ASSERT_EQ(fx.sunk.size(), 1u);
  EXPECT_EQ(StringField(fx.sunk[0], "kind"), "restart");
  EXPECT_EQ(StringField(fx.sunk[0], "phase"), "alive");
  EXPECT_EQ(StringField(fx.sunk[0], "detail"), "shared_memory");
  EXPECT_EQ(IntField(fx.sunk[0], "value"), 123456);
  EXPECT_EQ(IntField(fx.sunk[0], "generation"), 3);
}

TEST(StatsExporterTest, OwnMetricsExcludedFromExport) {
  // The exporter's bookkeeping lives in the GLOBAL registry; exporting
  // from the global registry must never produce rows about the exporter
  // itself (break #2 of the self-amplification guard).
  MetricsRegistry::Global().ResetForTest();
  std::vector<Row> sunk;
  StatsExporterOptions options;
  options.now_unix_seconds = [] { return int64_t{1700000000}; };
  StatsExporter exporter(options,
                         [&](const std::string&, const std::vector<Row>& rows) {
                           sunk.insert(sunk.end(), rows.begin(), rows.end());
                           return Status::OK();
                         });
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(exporter.ExportOnce().ok());
  for (const Row& row : sunk) {
    std::string metric = StringField(row, "metric");
    EXPECT_NE(metric.rfind("scuba.obs.stats_exporter.", 0), 0u)
        << "exporter exported its own metric: " << metric;
  }
}

// Satellite regression: 100 export cycles with steady outside activity
// must converge to a stable per-cycle row count and a bounded row width —
// the exporter must not amplify its own ingestion.
TEST(StatsExporterTest, HundredCyclesStayBounded) {
  ExporterFixture fx;
  Counter* work = fx.registry.GetCounter("scuba.test.steady_work");
  Histogram* lat = fx.registry.GetHistogram("scuba.test.steady_latency");

  size_t max_fields = 0;
  std::vector<size_t> per_cycle_rows;
  for (int cycle = 0; cycle < 100; ++cycle) {
    work->Add(10);       // the same outside activity every cycle
    lat->Record(500);
    size_t before = fx.sunk.size();
    ASSERT_TRUE(fx.exporter.ExportOnce().ok());
    per_cycle_rows.push_back(fx.sunk.size() - before);
    for (size_t i = before; i < fx.sunk.size(); ++i) {
      max_fields = std::max(max_fields, fx.sunk[i].fields.size());
    }
  }
  // After the first cycle (first-sight rows), every cycle exports exactly
  // the two moving metrics — no growth over 100 cycles.
  for (size_t cycle = 1; cycle < per_cycle_rows.size(); ++cycle) {
    EXPECT_EQ(per_cycle_rows[cycle], 2u) << "cycle " << cycle;
  }
  // Row width is the fixed sparse schema: time, metric, kind, generation,
  // leaf + kind-specific value columns. Nothing accretes onto it.
  EXPECT_LE(max_fields, 10u);
  EXPECT_EQ(fx.exporter.cycles(), 100u);
}

}  // namespace
}  // namespace obs
}  // namespace scuba
