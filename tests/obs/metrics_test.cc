#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "util/random.h"

namespace scuba {
namespace obs {
namespace {

TEST(ObsMetricsTest, CounterSumsAcrossShardsAndThreads) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.Value(), 42u + kThreads * kPerThread);
}

TEST(ObsMetricsTest, GaugeSetAndAdd) {
  Gauge gauge;
  gauge.Set(7);
  EXPECT_EQ(gauge.Value(), 7);
  gauge.Add(-10);
  EXPECT_EQ(gauge.Value(), -3);
}

TEST(ObsMetricsTest, HistogramBucketBoundaries) {
  // Bucket 0 holds the value 0; bucket i >= 1 holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(7), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 4u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), 64u);

  EXPECT_EQ(Histogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::BucketLowerBound(1), 1u);
  EXPECT_EQ(Histogram::BucketLowerBound(2), 2u);
  EXPECT_EQ(Histogram::BucketLowerBound(3), 4u);
  EXPECT_EQ(Histogram::BucketLowerBound(11), 1024u);

  // Every value lands in the bucket whose range covers it.
  for (uint64_t v : {0ull, 1ull, 2ull, 5ull, 100ull, 65535ull, 65536ull}) {
    size_t i = Histogram::BucketIndex(v);
    EXPECT_GE(v, Histogram::BucketLowerBound(i)) << v;
    if (i + 1 < Histogram::kNumBuckets) {
      EXPECT_LT(v, Histogram::BucketLowerBound(i + 1)) << v;
    }
  }
}

TEST(ObsMetricsTest, HistogramSnapshotStats) {
  Histogram hist;
  hist.Record(0);
  hist.Record(1);
  hist.Record(100);
  hist.Record(1000);

  Histogram::Snapshot snap = hist.TakeSnapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum, 1101u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 1000u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 1101.0 / 4.0);
  EXPECT_EQ(snap.buckets[Histogram::BucketIndex(0)], 1u);
  EXPECT_EQ(snap.buckets[Histogram::BucketIndex(100)], 1u);

  // Percentiles are bucket upper bounds, clamped to the observed max.
  EXPECT_LE(snap.PercentileUpperBound(1.0), 1000u);
  EXPECT_GE(snap.PercentileUpperBound(1.0), 512u);
  EXPECT_LE(snap.PercentileUpperBound(0.0), 1u);
}

TEST(ObsMetricsTest, HistogramSnapshotMerge) {
  Histogram a;
  Histogram b;
  a.Record(4);
  a.Record(16);
  b.Record(2);
  b.Record(1024);

  Histogram::Snapshot merged = a.TakeSnapshot();
  merged.Merge(b.TakeSnapshot());
  EXPECT_EQ(merged.count, 4u);
  EXPECT_EQ(merged.sum, 4u + 16u + 2u + 1024u);
  EXPECT_EQ(merged.min, 2u);
  EXPECT_EQ(merged.max, 1024u);
  EXPECT_EQ(merged.buckets[Histogram::BucketIndex(4)], 1u);
  EXPECT_EQ(merged.buckets[Histogram::BucketIndex(2)], 1u);

  // Merging an empty snapshot changes nothing.
  Histogram::Snapshot empty;
  Histogram::Snapshot copy = merged;
  copy.Merge(empty);
  EXPECT_EQ(copy.count, merged.count);
  EXPECT_EQ(copy.min, merged.min);
  EXPECT_EQ(copy.max, merged.max);
}

TEST(ObsMetricsTest, InterpolatedPercentileEdgeCases) {
  Histogram empty;
  EXPECT_DOUBLE_EQ(empty.TakeSnapshot().Percentile(0.5), 0.0);

  // Constant data: the [min, max] clamp collapses the bucket estimate to
  // the exact value.
  Histogram constant;
  for (int i = 0; i < 100; ++i) constant.Record(1000);
  Histogram::Snapshot snap = constant.TakeSnapshot();
  EXPECT_DOUBLE_EQ(snap.Percentile(0.5), 1000.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(0.99), 1000.0);

  // All zeros live in bucket 0, which holds only the value 0.
  Histogram zeros;
  for (int i = 0; i < 10; ++i) zeros.Record(0);
  EXPECT_DOUBLE_EQ(zeros.TakeSnapshot().Percentile(0.95), 0.0);
}

TEST(ObsMetricsTest, InterpolatedPercentileWithinFactorOfTwoOfExact) {
  // The documented error bound: the estimate lies inside the true
  // quantile's log2 bucket, so it is within a factor of 2 of the exact
  // quantile. Check it against exact order statistics on skewed
  // pseudo-random data at the three exported percentiles.
  Random random(20140607);
  Histogram hist;
  std::vector<uint64_t> values;
  for (int i = 0; i < 20000; ++i) {
    // Latency-shaped: mostly small with a heavy tail.
    uint64_t v = 1 + random.Uniform(100);
    if (random.Bernoulli(0.05)) v *= 100;
    if (random.Bernoulli(0.01)) v *= 10000;
    hist.Record(v);
    values.push_back(v);
  }
  std::sort(values.begin(), values.end());
  Histogram::Snapshot snap = hist.TakeSnapshot();

  for (double p : {0.50, 0.95, 0.99}) {
    double target = p * static_cast<double>(values.size());
    size_t rank = target <= 1.0 ? 0
                                : static_cast<size_t>(std::ceil(target)) - 1;
    if (rank >= values.size()) rank = values.size() - 1;
    double exact = static_cast<double>(values[rank]);
    double est = snap.Percentile(p);
    EXPECT_GE(est, exact / 2.0) << "p=" << p << " exact=" << exact;
    EXPECT_LE(est, exact * 2.0) << "p=" << p << " exact=" << exact;
    // And always inside the observed range.
    EXPECT_GE(est, static_cast<double>(snap.min));
    EXPECT_LE(est, static_cast<double>(snap.max));
  }
}

TEST(ObsMetricsTest, RegistryHandlesAreStable) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* c1 = reg.GetCounter("scuba.test.stable_counter");
  Counter* c2 = reg.GetCounter("scuba.test.stable_counter");
  EXPECT_EQ(c1, c2);
  Histogram* h1 = reg.GetHistogram("scuba.test.stable_hist");
  Histogram* h2 = reg.GetHistogram("scuba.test.stable_hist");
  EXPECT_EQ(h1, h2);

  c1->ResetForTest();
  c1->Add(3);
  EXPECT_EQ(c2->Value(), 3u);

  // Reset zeroes in place; the handle stays valid.
  reg.ResetForTest();
  EXPECT_EQ(c1->Value(), 0u);
  EXPECT_EQ(reg.GetCounter("scuba.test.stable_counter"), c1);
}

// The TSan-leg workhorse: hammer one histogram + counter from many threads
// while another thread repeatedly snapshots/serializes. Correctness checks
// run after the join; during the run TSan checks the record/snapshot races.
TEST(ObsMetricsTest, SnapshotUnderConcurrentRecordIsClean) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* counter = reg.GetCounter("scuba.test.concurrent_counter");
  Histogram* hist = reg.GetHistogram("scuba.test.concurrent_hist");
  counter->ResetForTest();
  hist->ResetForTest();

  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      Histogram::Snapshot snap = hist->TakeSnapshot();
      EXPECT_LE(snap.min, snap.max);
      (void)counter->Value();
      (void)reg.ToJson();
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Add(1);
        hist->Record(static_cast<uint64_t>(t * kPerThread + i));
      }
    });
  }
  for (auto& w : writers) w.join();
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(counter->Value(), uint64_t{kThreads} * kPerThread);
  Histogram::Snapshot final_snap = hist->TakeSnapshot();
  EXPECT_EQ(final_snap.count, uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(final_snap.min, 0u);
  EXPECT_EQ(final_snap.max, uint64_t{kThreads} * kPerThread - 1);
}

TEST(ObsMetricsTest, ToJsonContainsAllSections) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("scuba.test.json_counter")->Add(5);
  reg.GetGauge("scuba.test.json_gauge")->Set(-2);
  reg.GetHistogram("scuba.test.json_hist")->Record(33);

  std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"scuba.test.json_counter\""), std::string::npos);
  EXPECT_NE(json.find("\"scuba.test.json_gauge\": -2"), std::string::npos);
  EXPECT_NE(json.find("\"scuba.test.json_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(ObsMetricsTest, ConvenienceRecordersHitTheRegistry) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("scuba.test.conv_counter")->ResetForTest();
  IncrCounter("scuba.test.conv_counter");
  IncrCounter("scuba.test.conv_counter", 9);
  EXPECT_EQ(reg.GetCounter("scuba.test.conv_counter")->Value(), 10u);

  SetGauge("scuba.test.conv_gauge", 123);
  EXPECT_EQ(reg.GetGauge("scuba.test.conv_gauge")->Value(), 123);

  reg.GetHistogram("scuba.test.conv_hist")->ResetForTest();
  RecordHistogram("scuba.test.conv_hist", 64);
  EXPECT_EQ(reg.GetHistogram("scuba.test.conv_hist")->TakeSnapshot().count,
            1u);
}

}  // namespace
}  // namespace obs
}  // namespace scuba
