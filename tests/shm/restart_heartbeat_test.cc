#include "shm/restart_heartbeat.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "shm/shm_segment.h"
#include "test_util.h"

namespace scuba {
namespace {

using testing_util::ShmNamespace;

TEST(RestartHeartbeatTest, AttachPublishReadRoundtrip) {
  ShmNamespace ns("hb_rt");
  auto hb = RestartHeartbeat::Attach(ns.prefix(), 1);
  ASSERT_TRUE(hb.ok()) << hb.status().ToString();
  EXPECT_EQ(hb->generation(), 1u);

  hb->SetBytesTotal(1000);
  hb->SetPhase(RestartPhase::kCopyOut);
  hb->AddBytesCopied(250);

  auto reading = RestartHeartbeat::ReadOnce(ns.prefix(), 1);
  ASSERT_TRUE(reading.ok()) << reading.status().ToString();
  EXPECT_EQ(reading->generation, 1u);
  EXPECT_EQ(reading->phase, RestartPhase::kCopyOut);
  EXPECT_EQ(reading->bytes_copied, 250u);
  EXPECT_EQ(reading->bytes_total, 1000u);
  EXPECT_DOUBLE_EQ(reading->Progress(), 0.25);
  EXPECT_GT(reading->stamp_micros, 0);
}

TEST(RestartHeartbeatTest, ReadWithoutBlockIsNotFound) {
  ShmNamespace ns("hb_none");
  auto reading = RestartHeartbeat::ReadOnce(ns.prefix(), 9);
  EXPECT_TRUE(reading.status().IsNotFound());
}

TEST(RestartHeartbeatTest, GenerationContinuesAcrossAttaches) {
  ShmNamespace ns("hb_gen");
  {
    auto hb = RestartHeartbeat::Attach(ns.prefix(), 2);
    ASSERT_TRUE(hb.ok());
    EXPECT_EQ(hb->generation(), 1u);
    hb->SetPhase(RestartPhase::kExited);
  }
  // A monitor that mapped the block while watching the predecessor keeps
  // seeing the successor through the same mapping (reinit is in place).
  auto monitor = RestartHeartbeat::OpenForRead(ns.prefix(), 2);
  ASSERT_TRUE(monitor.ok());

  auto hb2 = RestartHeartbeat::Attach(ns.prefix(), 2);
  ASSERT_TRUE(hb2.ok());
  EXPECT_EQ(hb2->generation(), 2u);

  auto reading = monitor->Read();
  ASSERT_TRUE(reading.ok()) << reading.status().ToString();
  EXPECT_EQ(reading->generation, 2u);
  EXPECT_EQ(reading->phase, RestartPhase::kIdle);  // fresh generation
}

TEST(RestartHeartbeatTest, StaleGarbageFromCrashedPredecessorIsIgnored) {
  ShmNamespace ns("hb_stale");
  {
    auto hb = RestartHeartbeat::Attach(ns.prefix(), 3);
    ASSERT_TRUE(hb.ok());
    hb->SetPhase(RestartPhase::kCopyOut);
  }
  // Simulate the garbage a crashed predecessor (or a foreign layout)
  // leaves behind: flip bytes in the slow fields without resealing.
  {
    auto seg = ShmSegment::Open(
        RestartHeartbeat::SegmentNameForLeaf(ns.prefix(), 3));
    ASSERT_TRUE(seg.ok());
    uint64_t junk = 0xdeadbeefdeadbeefull;
    std::memcpy(seg->data() + 8, &junk, sizeof(junk));   // generation slot
    std::memcpy(seg->data() + 16, &junk, sizeof(junk));  // phase slot
  }
  // Readers reject the block (checksum no longer covers the slow fields).
  auto reading = RestartHeartbeat::ReadOnce(ns.prefix(), 3);
  EXPECT_TRUE(reading.status().IsUnavailable())
      << reading.status().ToString();

  // A writer attaching over the garbage restarts the generation sequence
  // at 1 instead of continuing from the junk value.
  auto hb = RestartHeartbeat::Attach(ns.prefix(), 3);
  ASSERT_TRUE(hb.ok());
  EXPECT_EQ(hb->generation(), 1u);
  auto fresh = RestartHeartbeat::ReadOnce(ns.prefix(), 3);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->generation, 1u);
}

TEST(RestartHeartbeatTest, BytesCopiedIsMonotoneWithinGeneration) {
  ShmNamespace ns("hb_mono");
  auto hb = RestartHeartbeat::Attach(ns.prefix(), 4);
  ASSERT_TRUE(hb.ok());
  hb->SetBytesTotal(64 * 100);

  auto reader = RestartHeartbeat::OpenForRead(ns.prefix(), 4);
  ASSERT_TRUE(reader.ok());
  uint64_t last = 0;
  for (int i = 0; i < 100; ++i) {
    hb->AddBytesCopied(64);
    auto reading = reader->Read();
    ASSERT_TRUE(reading.ok());
    EXPECT_GE(reading->bytes_copied, last);
    last = reading->bytes_copied;
  }
  EXPECT_EQ(last, 64u * 100u);
}

TEST(RestartHeartbeatTest, AdvancedOverDetectsProgressAndSilence) {
  ShmNamespace ns("hb_adv");
  auto hb = RestartHeartbeat::Attach(ns.prefix(), 5);
  ASSERT_TRUE(hb.ok());
  auto reader = RestartHeartbeat::OpenForRead(ns.prefix(), 5);
  ASSERT_TRUE(reader.ok());

  auto r1 = reader->Read();
  ASSERT_TRUE(r1.ok());
  // Silence: a re-read with no writer activity shows no advance.
  auto r2 = reader->Read();
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2->AdvancedOver(*r1));
  // Any write (bytes here) advances the sample.
  hb->AddBytesCopied(1);
  auto r3 = reader->Read();
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(r3->AdvancedOver(*r1));
}

// TSan leg: the multi-writer discipline the copy engine uses — one
// orchestrator on the slow fields, many copy workers on bytes/stamp, one
// external monitor polling — must be clean.
TEST(RestartHeartbeatTest, ConcurrentWritersAndReader) {
  ShmNamespace ns("hb_tsan");
  auto hb = RestartHeartbeat::Attach(ns.prefix(), 6);
  ASSERT_TRUE(hb.ok());
  hb->SetBytesTotal(2 * 1000 * 8);

  std::atomic<bool> stop{false};
  std::thread reader_thread([&] {
    auto reader = RestartHeartbeat::OpenForRead(ns.prefix(), 6);
    ASSERT_TRUE(reader.ok());
    uint64_t last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      auto reading = reader->Read();
      // A racing slow-field write may yield a transient Unavailable;
      // monotonicity must hold across every valid sample.
      if (reading.ok()) {
        EXPECT_GE(reading->bytes_copied, last);
        last = reading->bytes_copied;
      }
    }
  });

  std::vector<std::thread> workers;
  for (int w = 0; w < 2; ++w) {
    workers.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) hb->AddBytesCopied(8);
    });
  }
  // The orchestrator flips phases while workers stream bytes.
  hb->SetPhase(RestartPhase::kCopyOut);
  for (auto& w : workers) w.join();
  hb->SetPhase(RestartPhase::kSetValid);
  stop.store(true, std::memory_order_release);
  reader_thread.join();

  auto final_reading = RestartHeartbeat::ReadOnce(ns.prefix(), 6);
  ASSERT_TRUE(final_reading.ok());
  EXPECT_EQ(final_reading->bytes_copied, 2u * 1000u * 8u);
  EXPECT_EQ(final_reading->phase, RestartPhase::kSetValid);
}

}  // namespace
}  // namespace scuba
