#include "shm/shm_arena_allocator.h"

#include <gtest/gtest.h>

#include <vector>

#include "test_util.h"
#include "util/random.h"

namespace scuba {
namespace {

using testing_util::ShmNamespace;

TEST(ShmArenaTest, AllocateAndFree) {
  ShmNamespace ns("arena1");
  auto arena = ShmArenaAllocator::Create("/" + ns.prefix() + "_a", 1 << 16);
  ASSERT_TRUE(arena.ok()) << arena.status().ToString();

  auto off1 = arena->Allocate(100);
  ASSERT_TRUE(off1.ok());
  auto off2 = arena->Allocate(200);
  ASSERT_TRUE(off2.ok());
  EXPECT_NE(*off1, *off2);
  EXPECT_EQ(arena->allocated_bytes(), 104u + 200u);  // 8-aligned

  ASSERT_TRUE(arena->Free(*off1, 100).ok());
  ASSERT_TRUE(arena->Free(*off2, 200).ok());
  EXPECT_EQ(arena->allocated_bytes(), 0u);
  EXPECT_EQ(arena->num_free_ranges(), 1u);  // fully coalesced
}

TEST(ShmArenaTest, ZeroAllocAndDoubleFreeRejected) {
  ShmNamespace ns("arena2");
  auto arena = ShmArenaAllocator::Create("/" + ns.prefix() + "_a", 4096);
  ASSERT_TRUE(arena.ok());
  EXPECT_TRUE(arena->Allocate(0).status().IsInvalidArgument());
  auto off = arena->Allocate(64);
  ASSERT_TRUE(off.ok());
  ASSERT_TRUE(arena->Free(*off, 64).ok());
  EXPECT_TRUE(arena->Free(*off, 64).IsInvalidArgument());
  EXPECT_TRUE(arena->Free(1 << 30, 8).IsInvalidArgument());
}

TEST(ShmArenaTest, ExhaustionFails) {
  ShmNamespace ns("arena3");
  auto arena = ShmArenaAllocator::Create("/" + ns.prefix() + "_a", 4096);
  ASSERT_TRUE(arena.ok());
  ASSERT_TRUE(arena->Allocate(4096).ok());
  EXPECT_TRUE(arena->Allocate(8).status().IsResourceExhausted());
}

TEST(ShmArenaTest, FragmentationBlocksLargeAllocDespiteFreeSpace) {
  // The paper's worry in §3 made concrete: half the arena is free, but no
  // single free range fits a large allocation.
  ShmNamespace ns("arena4");
  constexpr size_t kArena = 64 * 1024;
  auto arena = ShmArenaAllocator::Create("/" + ns.prefix() + "_a", kArena);
  ASSERT_TRUE(arena.ok());

  std::vector<uint64_t> offsets;
  constexpr size_t kChunk = 1024;
  for (size_t i = 0; i < kArena / kChunk; ++i) {
    auto off = arena->Allocate(kChunk);
    ASSERT_TRUE(off.ok());
    offsets.push_back(*off);
  }
  // Free every other chunk: 32 KB free, largest hole 1 KB.
  for (size_t i = 0; i < offsets.size(); i += 2) {
    ASSERT_TRUE(arena->Free(offsets[i], kChunk).ok());
  }
  EXPECT_EQ(arena->free_bytes(), kArena / 2);
  EXPECT_EQ(arena->largest_free_range(), kChunk);
  EXPECT_GT(arena->FragmentationRatio(), 0.9);
  // 2 KB allocation fails even though 32 KB is nominally free.
  EXPECT_TRUE(arena->Allocate(2 * kChunk).status().IsResourceExhausted());
}

TEST(ShmArenaTest, CoalescingMendsAdjacentRanges) {
  ShmNamespace ns("arena5");
  auto arena = ShmArenaAllocator::Create("/" + ns.prefix() + "_a", 8192);
  ASSERT_TRUE(arena.ok());
  auto a = arena->Allocate(1000);
  auto b = arena->Allocate(1000);
  auto c = arena->Allocate(1000);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(arena->Free(*a, 1000).ok());
  ASSERT_TRUE(arena->Free(*c, 1000).ok());
  // Head hole, plus c's hole coalesced with the untouched tail.
  EXPECT_EQ(arena->num_free_ranges(), 2u);
  ASSERT_TRUE(arena->Free(*b, 1000).ok());
  EXPECT_EQ(arena->num_free_ranges(), 1u);  // all merged
  EXPECT_DOUBLE_EQ(arena->FragmentationRatio(), 0.0);
}

TEST(ShmArenaTest, ChurnWorkloadAccumulatesFragmentation) {
  // Insert/expire churn like a live table: mixed sizes, FIFO frees.
  ShmNamespace ns("arena6");
  auto arena =
      ShmArenaAllocator::Create("/" + ns.prefix() + "_a", 4 << 20);
  ASSERT_TRUE(arena.ok());
  Random random(9);
  std::vector<std::pair<uint64_t, size_t>> live;
  double max_frag = 0;
  for (int step = 0; step < 3000; ++step) {
    size_t size = 64 + random.Uniform(8192);
    auto off = arena->Allocate(size);
    if (off.ok()) {
      live.emplace_back(*off, size);
    }
    if (live.size() > 200 || !off.ok()) {
      // Expire a random quarter (tables expire on different schedules).
      size_t drop = live.size() / 4 + 1;
      for (size_t i = 0; i < drop && !live.empty(); ++i) {
        size_t victim = random.Uniform(live.size());
        ASSERT_TRUE(
            arena->Free(live[victim].first, live[victim].second).ok());
        live.erase(live.begin() + static_cast<ptrdiff_t>(victim));
      }
    }
    max_frag = std::max(max_frag, arena->FragmentationRatio());
  }
  // Churn must provoke measurable fragmentation (the ablation's point).
  EXPECT_GT(max_frag, 0.05);
}

TEST(ShmArenaTest, DataSurvivesInSegment) {
  ShmNamespace ns("arena7");
  std::string name = "/" + ns.prefix() + "_a";
  uint64_t offset = 0;
  {
    auto arena = ShmArenaAllocator::Create(name, 4096);
    ASSERT_TRUE(arena.ok());
    auto off = arena->Allocate(16);
    ASSERT_TRUE(off.ok());
    offset = *off;
    std::memcpy(arena->data() + offset, "shm-resident", 12);
  }
  auto segment = ShmSegment::Open(name);
  ASSERT_TRUE(segment.ok());
  EXPECT_EQ(std::memcmp(segment->data() + offset, "shm-resident", 12), 0);
}

}  // namespace
}  // namespace scuba
