#include "shm/leaf_metadata.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace scuba {
namespace {

using testing_util::ShmNamespace;

TEST(LeafMetadataTest, CreateStartsInvalid) {
  ShmNamespace ns("meta1");
  auto meta = LeafMetadata::Create(ns.prefix(), 0);
  ASSERT_TRUE(meta.ok()) << meta.status().ToString();
  EXPECT_FALSE(meta->valid());
  EXPECT_EQ(meta->layout_version(), kShmLayoutVersion);
  EXPECT_TRUE(meta->table_segment_names().empty());
}

TEST(LeafMetadataTest, PersistsAcrossOpen) {
  ShmNamespace ns("meta2");
  {
    auto meta = LeafMetadata::Create(ns.prefix(), 3);
    ASSERT_TRUE(meta.ok());
    ASSERT_TRUE(meta->AddTableSegment("/" + ns.prefix() + "_t0").ok());
    ASSERT_TRUE(meta->AddTableSegment("/" + ns.prefix() + "_t1").ok());
    ASSERT_TRUE(meta->SetValid(true).ok());
  }
  auto reopened = LeafMetadata::Open(ns.prefix(), 3);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE(reopened->valid());
  ASSERT_EQ(reopened->table_segment_names().size(), 2u);
  EXPECT_EQ(reopened->table_segment_names()[0], "/" + ns.prefix() + "_t0");
  EXPECT_EQ(reopened->table_segment_names()[1], "/" + ns.prefix() + "_t1");
}

TEST(LeafMetadataTest, ValidBitTogglePersists) {
  ShmNamespace ns("meta3");
  {
    auto meta = LeafMetadata::Create(ns.prefix(), 1);
    ASSERT_TRUE(meta.ok());
    ASSERT_TRUE(meta->SetValid(true).ok());
  }
  {
    auto meta = LeafMetadata::Open(ns.prefix(), 1);
    ASSERT_TRUE(meta.ok());
    EXPECT_TRUE(meta->valid());
    ASSERT_TRUE(meta->SetValid(false).ok());
  }
  auto meta = LeafMetadata::Open(ns.prefix(), 1);
  ASSERT_TRUE(meta.ok());
  EXPECT_FALSE(meta->valid());
}

TEST(LeafMetadataTest, DistinctLeavesAreIsolated) {
  ShmNamespace ns("meta4");
  auto a = LeafMetadata::Create(ns.prefix(), 1);
  auto b = LeafMetadata::Create(ns.prefix(), 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(a->AddTableSegment("/seg_for_1").ok());
  auto b_read = LeafMetadata::Open(ns.prefix(), 2);
  ASSERT_TRUE(b_read.ok());
  EXPECT_TRUE(b_read->table_segment_names().empty());
}

TEST(LeafMetadataTest, CreateTwiceFails) {
  ShmNamespace ns("meta5");
  ASSERT_TRUE(LeafMetadata::Create(ns.prefix(), 0).ok());
  EXPECT_TRUE(LeafMetadata::Create(ns.prefix(), 0).status().IsAlreadyExists());
}

TEST(LeafMetadataTest, OpenMissingIsNotFound) {
  ShmNamespace ns("meta6");
  EXPECT_FALSE(LeafMetadata::Exists(ns.prefix(), 7));
  EXPECT_TRUE(LeafMetadata::Open(ns.prefix(), 7).status().IsNotFound());
}

TEST(LeafMetadataTest, DestroyAllSegmentsRemovesEverything) {
  ShmNamespace ns("meta7");
  auto seg = ShmSegment::Create("/" + ns.prefix() + "_tX", 64);
  ASSERT_TRUE(seg.ok());
  auto meta = LeafMetadata::Create(ns.prefix(), 0);
  ASSERT_TRUE(meta.ok());
  ASSERT_TRUE(meta->AddTableSegment("/" + ns.prefix() + "_tX").ok());
  ASSERT_TRUE(meta->DestroyAllSegments().ok());
  EXPECT_FALSE(ShmSegment::Exists("/" + ns.prefix() + "_tX"));
  EXPECT_FALSE(LeafMetadata::Exists(ns.prefix(), 0));
}

TEST(LeafMetadataTest, CorruptedChecksumIsDetected) {
  ShmNamespace ns("meta8");
  {
    auto meta = LeafMetadata::Create(ns.prefix(), 0);
    ASSERT_TRUE(meta.ok());
    ASSERT_TRUE(meta->AddTableSegment("/x").ok());
  }
  // Flip a byte inside the checksummed payload (the num-tables field at
  // offset 16 begins the CRC-covered region).
  auto raw = ShmSegment::Open(LeafMetadata::SegmentNameForLeaf(ns.prefix(), 0));
  ASSERT_TRUE(raw.ok());
  raw->data()[16] ^= 0xFF;
  EXPECT_TRUE(LeafMetadata::Open(ns.prefix(), 0).status().IsCorruption());
}

TEST(LeafMetadataTest, ManyTableNamesFit) {
  ShmNamespace ns("meta9");
  auto meta = LeafMetadata::Create(ns.prefix(), 0);
  ASSERT_TRUE(meta.ok());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(
        meta->AddTableSegment("/" + ns.prefix() + "_table_segment_" +
                              std::to_string(i))
            .ok())
        << i;
  }
  auto reopened = LeafMetadata::Open(ns.prefix(), 0);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->table_segment_names().size(), 500u);
}

}  // namespace
}  // namespace scuba
