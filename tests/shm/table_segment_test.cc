#include "shm/table_segment.h"

#include <gtest/gtest.h>

#include <cstring>

#include "columnar/table.h"
#include "test_util.h"

namespace scuba {
namespace {

using testing_util::MakeRows;
using testing_util::ShmNamespace;

std::unique_ptr<RowBlock> MakeBlock(size_t rows, int64_t t0) {
  Table table("tmp");
  EXPECT_TRUE(table.AddRows(MakeRows(rows, t0), 0).ok());
  EXPECT_TRUE(table.SealWriteBuffer(0).ok());
  return table.ReleaseRowBlock(0);
}

// Writes `blocks` through the streaming writer, like shutdown does.
void WriteBlocks(TableSegmentWriter* writer,
                 const std::vector<std::unique_ptr<RowBlock>>& blocks) {
  for (const auto& block : blocks) {
    ASSERT_TRUE(writer->AppendRowBlockMeta(*block).ok());
    for (size_t c = 0; c < block->num_columns(); ++c) {
      ASSERT_TRUE(writer->AppendColumnBuffer(block->column(c)->AsSlice()).ok());
    }
  }
  ASSERT_TRUE(writer->Finish(blocks.size()).ok());
}

TEST(TableSegmentTest, WriteThenReadRoundTrip) {
  ShmNamespace ns("tseg1");
  std::string seg_name = "/" + ns.prefix() + "_t0";

  std::vector<std::unique_ptr<RowBlock>> blocks;
  blocks.push_back(MakeBlock(100, 1000));
  blocks.push_back(MakeBlock(50, 2000));

  auto writer = TableSegmentWriter::Create(seg_name, "events", 1 << 16);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  WriteBlocks(&writer.value(), blocks);

  auto reader = TableSegmentReader::Open(seg_name);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->table_name(), "events");
  ASSERT_EQ(reader->num_row_blocks(), 2u);
  EXPECT_EQ(reader->block(0).meta.header.row_count, 100u);
  EXPECT_EQ(reader->block(1).meta.header.row_count, 50u);
  EXPECT_EQ(reader->block(0).meta.schema, blocks[0]->schema());

  // Column payloads are bit-identical to the source buffers.
  for (size_t b = 0; b < 2; ++b) {
    for (size_t c = 0; c < blocks[b]->num_columns(); ++c) {
      Slice src = blocks[b]->column(c)->AsSlice();
      Slice dst = reader->ColumnSlice(b, c);
      ASSERT_EQ(src.size(), dst.size());
      EXPECT_EQ(std::memcmp(src.data(), dst.data(), src.size()), 0);
    }
  }
}

TEST(TableSegmentTest, UnderestimatedSizeGrows) {
  ShmNamespace ns("tseg2");
  std::string seg_name = "/" + ns.prefix() + "_t0";

  std::vector<std::unique_ptr<RowBlock>> blocks;
  blocks.push_back(MakeBlock(5000, 1000));

  // Estimate of 1 KB is far too small; the writer must grow (Fig 6).
  auto writer = TableSegmentWriter::Create(seg_name, "events", 1024);
  ASSERT_TRUE(writer.ok());
  WriteBlocks(&writer.value(), blocks);
  EXPECT_GT(writer->grow_count(), 0u);

  auto reader = TableSegmentReader::Open(seg_name);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->block(0).meta.header.row_count, 5000u);
}

TEST(TableSegmentTest, OverestimatedSizeIsTruncatedAtFinish) {
  ShmNamespace ns("tseg3");
  std::string seg_name = "/" + ns.prefix() + "_t0";

  std::vector<std::unique_ptr<RowBlock>> blocks;
  blocks.push_back(MakeBlock(10, 1000));

  auto writer = TableSegmentWriter::Create(seg_name, "events", 8 << 20);
  ASSERT_TRUE(writer.ok());
  WriteBlocks(&writer.value(), blocks);

  auto reader = TableSegmentReader::Open(seg_name);
  ASSERT_TRUE(reader.ok());
  EXPECT_LT(reader->segment_bytes(), 1u << 20);
  EXPECT_EQ(reader->segment_bytes(), reader->used_bytes());
}

TEST(TableSegmentTest, EmptyTableRoundTrips) {
  ShmNamespace ns("tseg4");
  std::string seg_name = "/" + ns.prefix() + "_t0";
  auto writer = TableSegmentWriter::Create(seg_name, "empty_table", 4096);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Finish(0).ok());

  auto reader = TableSegmentReader::Open(seg_name);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->table_name(), "empty_table");
  EXPECT_EQ(reader->num_row_blocks(), 0u);
}

TEST(TableSegmentTest, TruncateToBlockOffsetDropsTail) {
  ShmNamespace ns("tseg5");
  std::string seg_name = "/" + ns.prefix() + "_t0";

  std::vector<std::unique_ptr<RowBlock>> blocks;
  blocks.push_back(MakeBlock(100, 1000));
  blocks.push_back(MakeBlock(100, 2000));
  auto writer = TableSegmentWriter::Create(seg_name, "events", 1 << 16);
  ASSERT_TRUE(writer.ok());
  WriteBlocks(&writer.value(), blocks);

  auto reader = TableSegmentReader::Open(seg_name);
  ASSERT_TRUE(reader.ok());
  size_t before = reader->segment_bytes();
  size_t second_block_offset = reader->block(1).block_offset;
  ASSERT_TRUE(reader->TruncateTo(second_block_offset).ok());
  EXPECT_LT(reader->segment_bytes(), before);
  // Block 0's columns are still readable after the tail truncation.
  Slice col = reader->ColumnSlice(0, 0);
  EXPECT_TRUE(RowBlockColumn::ValidateBuffer(col).ok());
}

TEST(TableSegmentTest, CorruptMagicIsDetected) {
  ShmNamespace ns("tseg6");
  std::string seg_name = "/" + ns.prefix() + "_t0";
  std::vector<std::unique_ptr<RowBlock>> blocks;
  blocks.push_back(MakeBlock(10, 1000));
  auto writer = TableSegmentWriter::Create(seg_name, "events", 1 << 16);
  ASSERT_TRUE(writer.ok());
  WriteBlocks(&writer.value(), blocks);

  auto raw = ShmSegment::Open(seg_name);
  ASSERT_TRUE(raw.ok());
  raw->data()[0] ^= 0xFF;
  EXPECT_TRUE(TableSegmentReader::Open(seg_name).status().IsCorruption());
}

TEST(TableSegmentTest, TruncatedSegmentIsDetected) {
  ShmNamespace ns("tseg7");
  std::string seg_name = "/" + ns.prefix() + "_t0";
  std::vector<std::unique_ptr<RowBlock>> blocks;
  blocks.push_back(MakeBlock(1000, 1000));
  auto writer = TableSegmentWriter::Create(seg_name, "events", 1 << 16);
  ASSERT_TRUE(writer.ok());
  WriteBlocks(&writer.value(), blocks);

  // Chop the segment in half behind the reader's back.
  {
    auto raw = ShmSegment::Open(seg_name);
    ASSERT_TRUE(raw.ok());
    size_t half = raw->size() / 2;
    ASSERT_TRUE(raw->Truncate(half).ok());
  }
  EXPECT_FALSE(TableSegmentReader::Open(seg_name).ok());
}

TEST(TableSegmentTest, UnlinkRemovesSegment) {
  ShmNamespace ns("tseg8");
  std::string seg_name = "/" + ns.prefix() + "_t0";
  std::vector<std::unique_ptr<RowBlock>> blocks;
  blocks.push_back(MakeBlock(10, 1000));
  auto writer = TableSegmentWriter::Create(seg_name, "events", 1 << 16);
  ASSERT_TRUE(writer.ok());
  WriteBlocks(&writer.value(), blocks);

  auto reader = TableSegmentReader::Open(seg_name);
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE(reader->Unlink().ok());
  EXPECT_FALSE(ShmSegment::Exists(seg_name));
}

}  // namespace
}  // namespace scuba
