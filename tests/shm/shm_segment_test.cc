#include "shm/shm_segment.h"

#include <gtest/gtest.h>

#include <cstring>

#include "test_util.h"

namespace scuba {
namespace {

using testing_util::ShmNamespace;

TEST(ShmSegmentTest, CreateWriteOpenRead) {
  ShmNamespace ns("seg1");
  std::string name = "/" + ns.prefix() + "_a";

  {
    auto segment = ShmSegment::Create(name, 4096);
    ASSERT_TRUE(segment.ok()) << segment.status().ToString();
    std::memcpy(segment->data(), "persist me", 10);
  }  // segment object destroyed; shared memory must survive

  auto reopened = ShmSegment::Open(name);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->size(), 4096u);
  EXPECT_EQ(std::memcmp(reopened->data(), "persist me", 10), 0);
}

TEST(ShmSegmentTest, CreateRejectsBadNames) {
  EXPECT_TRUE(ShmSegment::Create("noslash", 64).status().IsInvalidArgument());
  EXPECT_TRUE(
      ShmSegment::Create("/a/b", 64).status().IsInvalidArgument());
  EXPECT_TRUE(ShmSegment::Create("", 64).status().IsInvalidArgument());
  EXPECT_TRUE(ShmSegment::Create("/x", 0).status().IsInvalidArgument());
}

TEST(ShmSegmentTest, CreateFailsIfExists) {
  ShmNamespace ns("seg2");
  std::string name = "/" + ns.prefix() + "_dup";
  auto first = ShmSegment::Create(name, 64);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(ShmSegment::Create(name, 64).status().IsAlreadyExists());
}

TEST(ShmSegmentTest, OpenMissingIsNotFound) {
  ShmNamespace ns("seg3");
  EXPECT_TRUE(ShmSegment::Open("/" + ns.prefix() + "_ghost")
                  .status()
                  .IsNotFound());
}

TEST(ShmSegmentTest, GrowPreservesContents) {
  ShmNamespace ns("seg4");
  auto segment = ShmSegment::Create("/" + ns.prefix() + "_g", 4096);
  ASSERT_TRUE(segment.ok());
  std::memset(segment->data(), 0xAB, 4096);
  ASSERT_TRUE(segment->Grow(1 << 20).ok());
  EXPECT_EQ(segment->size(), 1u << 20);
  for (size_t i = 0; i < 4096; ++i) {
    ASSERT_EQ(segment->data()[i], 0xAB) << i;
  }
  // Grow to smaller is a no-op.
  ASSERT_TRUE(segment->Grow(64).ok());
  EXPECT_EQ(segment->size(), 1u << 20);
}

TEST(ShmSegmentTest, TruncateShrinksAndKeepsPrefix) {
  ShmNamespace ns("seg5");
  auto segment = ShmSegment::Create("/" + ns.prefix() + "_t", 1 << 20);
  ASSERT_TRUE(segment.ok());
  std::memcpy(segment->data(), "head", 4);
  ASSERT_TRUE(segment->Truncate(4096).ok());
  EXPECT_EQ(segment->size(), 4096u);
  EXPECT_EQ(std::memcmp(segment->data(), "head", 4), 0);
  // Reopen sees the truncated size.
  std::string name = segment->name();
  auto reopened = ShmSegment::Open(name);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->size(), 4096u);
}

TEST(ShmSegmentTest, UnlinkRemoves) {
  ShmNamespace ns("seg6");
  std::string name = "/" + ns.prefix() + "_u";
  auto segment = ShmSegment::Create(name, 64);
  ASSERT_TRUE(segment.ok());
  EXPECT_TRUE(ShmSegment::Exists(name));
  ASSERT_TRUE(segment->Unlink().ok());
  EXPECT_FALSE(ShmSegment::Exists(name));
  // Removing a missing segment is OK.
  EXPECT_TRUE(ShmSegment::Remove(name).ok());
}

TEST(ShmSegmentTest, ListAndRemoveAllByPrefix) {
  ShmNamespace ns("seg7");
  for (int i = 0; i < 3; ++i) {
    auto s = ShmSegment::Create(
        "/" + ns.prefix() + "_n" + std::to_string(i), 64);
    ASSERT_TRUE(s.ok());
  }
  EXPECT_EQ(ShmSegment::List("/" + ns.prefix()).size(), 3u);
  EXPECT_GT(TotalShmBytes("/" + ns.prefix()), 0u);
  EXPECT_EQ(ShmSegment::RemoveAll("/" + ns.prefix()), 3u);
  EXPECT_TRUE(ShmSegment::List("/" + ns.prefix()).empty());
}

TEST(ShmSegmentTest, MoveTransfersOwnership) {
  ShmNamespace ns("seg8");
  auto segment = ShmSegment::Create("/" + ns.prefix() + "_m", 128);
  ASSERT_TRUE(segment.ok());
  std::memcpy(segment->data(), "xy", 2);
  ShmSegment moved = std::move(segment).value();
  EXPECT_EQ(moved.size(), 128u);
  EXPECT_EQ(std::memcmp(moved.data(), "xy", 2), 0);
}

TEST(ShmSegmentTest, SyncSucceeds) {
  ShmNamespace ns("seg9");
  auto segment = ShmSegment::Create("/" + ns.prefix() + "_s", 64);
  ASSERT_TRUE(segment.ok());
  EXPECT_TRUE(segment->Sync().ok());
}

}  // namespace
}  // namespace scuba
