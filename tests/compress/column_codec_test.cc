#include "compress/column_codec.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/random.h"

namespace scuba {
namespace {

using column_codec::ChainStages;
using column_codec::ChainToString;
using column_codec::DecodeDouble;
using column_codec::DecodeInt64;
using column_codec::DecodeString;
using column_codec::EncodedColumn;
using column_codec::EncodeDouble;
using column_codec::EncodeInt64;
using column_codec::EncodeString;
using column_codec::MakeChain;
using column_codec::Stage;

std::vector<int64_t> RoundTripInt(const std::vector<int64_t>& values) {
  EncodedColumn enc = EncodeInt64(values);
  std::vector<int64_t> out;
  Status s = DecodeInt64(enc.chain, enc.dict.AsSlice(), enc.data.AsSlice(),
                         values.size(), &out);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return out;
}

std::vector<double> RoundTripDouble(const std::vector<double>& values) {
  EncodedColumn enc = EncodeDouble(values);
  std::vector<double> out;
  Status s = DecodeDouble(enc.chain, enc.dict.AsSlice(), enc.data.AsSlice(),
                          values.size(), &out);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return out;
}

std::vector<std::string> RoundTripString(
    const std::vector<std::string>& values) {
  EncodedColumn enc = EncodeString(values);
  std::vector<std::string> out;
  Status s = DecodeString(enc.chain, enc.dict.AsSlice(), enc.data.AsSlice(),
                          values.size(), &out);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return out;
}

TEST(ChainTest, MakeAndDecompose) {
  auto chain = MakeChain({Stage::kDelta, Stage::kZigZag, Stage::kBitPack});
  EXPECT_EQ(ChainStages(chain),
            (std::vector<Stage>{Stage::kDelta, Stage::kZigZag,
                                Stage::kBitPack}));
  EXPECT_EQ(column_codec::ChainLength(chain), 3);
  EXPECT_EQ(ChainToString(chain), "delta+zigzag+bitpack");
  EXPECT_EQ(ChainToString(0), "none");
}

TEST(ColumnCodecTest, EmptyColumns) {
  EXPECT_TRUE(RoundTripInt({}).empty());
  EXPECT_TRUE(RoundTripDouble({}).empty());
  EXPECT_TRUE(RoundTripString({}).empty());
}

TEST(ColumnCodecTest, LowCardinalityIntsUseDictionary) {
  std::vector<int64_t> values;
  for (int i = 0; i < 1000; ++i) values.push_back(i % 3 == 0 ? 200 : 500);
  EncodedColumn enc = EncodeInt64(values);
  auto stages = ChainStages(enc.chain);
  ASSERT_GE(stages.size(), 2u);
  EXPECT_EQ(stages[0], Stage::kDictionary);
  EXPECT_EQ(stages[1], Stage::kBitPack);
  EXPECT_EQ(enc.dict_item_count, 2u);
  EXPECT_EQ(RoundTripInt(values), values);
}

TEST(ColumnCodecTest, TimestampsUseDeltaChain) {
  std::vector<int64_t> values;
  for (int i = 0; i < 10000; ++i) values.push_back(1400000000 + i / 2);
  EncodedColumn enc = EncodeInt64(values);
  auto stages = ChainStages(enc.chain);
  ASSERT_GE(stages.size(), 3u);
  EXPECT_EQ(stages[0], Stage::kDelta);
  EXPECT_EQ(stages[1], Stage::kZigZag);
  EXPECT_EQ(stages[2], Stage::kMiniBlockPack);
  // 10k timestamps at ~1 bit of delta each: far below 80 KB raw.
  EXPECT_LT(enc.data.size(), 4000u);
  EXPECT_EQ(RoundTripInt(values), values);
}

TEST(ColumnCodecTest, LegacyDeltaBitPackChainStillDecodes) {
  // Row blocks written before the mini-block format live on in shm images
  // and disk backups; the decoder must keep accepting the old chain.
  std::vector<int64_t> values;
  for (int i = 0; i < 10000; ++i) values.push_back(1400000000 + i / 2);
  EncodedColumn enc = column_codec::EncodeInt64Legacy(values);
  auto stages = ChainStages(enc.chain);
  ASSERT_GE(stages.size(), 3u);
  EXPECT_EQ(stages[2], Stage::kBitPack);
  std::vector<int64_t> out;
  Status s = DecodeInt64(enc.chain, enc.dict.AsSlice(), enc.data.AsSlice(),
                         values.size(), &out);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(out, values);
}

TEST(ColumnCodecTest, EveryColumnGetsAtLeastTwoMethods) {
  // The paper: "at least two methods applied to each column" (§2.1).
  std::vector<int64_t> timestamps;
  std::vector<int64_t> statuses;
  std::vector<std::string> services;
  Random random(1);
  for (int i = 0; i < 5000; ++i) {
    timestamps.push_back(1400000000 + i);
    statuses.push_back(random.Bernoulli(0.05) ? 500 : 200);
    services.push_back("svc_" + std::to_string(random.Uniform(20)));
  }
  EXPECT_GE(column_codec::ChainLength(EncodeInt64(timestamps).chain), 2);
  EXPECT_GE(column_codec::ChainLength(EncodeInt64(statuses).chain), 2);
  EXPECT_GE(column_codec::ChainLength(EncodeString(services).chain), 2);
}

TEST(ColumnCodecTest, ExtremeIntValuesRoundTrip) {
  std::vector<int64_t> values = {INT64_MIN, INT64_MAX, 0, -1, 1,
                                 INT64_MIN, INT64_MAX};
  EXPECT_EQ(RoundTripInt(values), values);
}

TEST(ColumnCodecTest, RandomIntsRoundTrip) {
  Random random(9);
  std::vector<int64_t> values;
  for (int i = 0; i < 20000; ++i) {
    values.push_back(static_cast<int64_t>(random.Next()));
  }
  EXPECT_EQ(RoundTripInt(values), values);
}

TEST(ColumnCodecTest, SingleValueColumns) {
  EXPECT_EQ(RoundTripInt({42}), std::vector<int64_t>{42});
  EXPECT_EQ(RoundTripDouble({3.5}), std::vector<double>{3.5});
  EXPECT_EQ(RoundTripString({"x"}), std::vector<std::string>{"x"});
}

TEST(ColumnCodecTest, RepetitiveDoublesUseShuffleLz4) {
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) values.push_back((i % 7) * 1.5);
  EncodedColumn enc = EncodeDouble(values);
  EXPECT_EQ(ChainStages(enc.chain),
            (std::vector<Stage>{Stage::kShuffle, Stage::kLz4}));
  EXPECT_LT(enc.data.size(), values.size() * 8 / 2);
  EXPECT_EQ(RoundTripDouble(values), values);
}

TEST(ColumnCodecTest, RandomDoublesFallBackToRaw) {
  Random random(21);
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) {
    uint64_t bits = random.Next();
    double v;
    std::memcpy(&v, &bits, 8);
    if (v != v) v = 0.25;  // avoid NaN (comparison in EXPECT_EQ)
    values.push_back(v);
  }
  EncodedColumn enc = EncodeDouble(values);
  EXPECT_EQ(ChainStages(enc.chain), (std::vector<Stage>{Stage::kRawFixed}));
  EXPECT_EQ(RoundTripDouble(values), values);
}

TEST(ColumnCodecTest, SpecialDoublesRoundTrip) {
  std::vector<double> values = {0.0, -0.0, 1e308, -1e308, 1e-308,
                                std::numeric_limits<double>::infinity(),
                                -std::numeric_limits<double>::infinity()};
  EXPECT_EQ(RoundTripDouble(values), values);
}

TEST(ColumnCodecTest, LowCardinalityStringsUseDictionary) {
  std::vector<std::string> values;
  for (int i = 0; i < 2000; ++i) {
    values.push_back("service_" + std::to_string(i % 10));
  }
  EncodedColumn enc = EncodeString(values);
  auto stages = ChainStages(enc.chain);
  ASSERT_GE(stages.size(), 2u);
  EXPECT_EQ(stages[0], Stage::kDictionary);
  EXPECT_EQ(enc.dict_item_count, 10u);
  EXPECT_LT(enc.dict.size() + enc.data.size(), 4000u);
  EXPECT_EQ(RoundTripString(values), values);
}

TEST(ColumnCodecTest, HighCardinalityStringsUseRawPath) {
  std::vector<std::string> values;
  Random random(33);
  for (int i = 0; i < 1000; ++i) {
    values.push_back("unique_string_number_" + std::to_string(i) + "_" +
                     std::to_string(random.Next()));
  }
  EncodedColumn enc = EncodeString(values);
  auto stages = ChainStages(enc.chain);
  ASSERT_FALSE(stages.empty());
  EXPECT_EQ(stages[0], Stage::kRawStrings);
  EXPECT_EQ(RoundTripString(values), values);
}

TEST(ColumnCodecTest, StringsWithEmbeddedNulsAndEmpties) {
  std::vector<std::string> values = {"", std::string("a\0b", 3), "",
                                     std::string(3000, 'q')};
  EXPECT_EQ(RoundTripString(values), values);
}

TEST(ColumnCodecTest, UnknownChainIsCorruption) {
  std::vector<int64_t> out;
  Status s = DecodeInt64(MakeChain({Stage::kShuffle}), Slice(), Slice(), 5,
                         &out);
  EXPECT_TRUE(s.IsCorruption());
}

TEST(ColumnCodecTest, TruncatedDataIsCorruption) {
  std::vector<int64_t> values;
  for (int i = 0; i < 1000; ++i) values.push_back(i * 1000);
  EncodedColumn enc = EncodeInt64(values);
  std::vector<int64_t> out;
  Status s = DecodeInt64(enc.chain, enc.dict.AsSlice(),
                         Slice(enc.data.data(), enc.data.size() / 2),
                         values.size(), &out);
  EXPECT_FALSE(s.ok());
}

// Compression-ratio property: service-log shaped columns compress well.
TEST(ColumnCodecTest, ServiceLogColumnsCompressAtLeastTenfold) {
  Random random(55);
  std::vector<std::string> services;
  std::vector<int64_t> statuses;
  std::vector<int64_t> times;
  constexpr int kRows = 50000;
  for (int i = 0; i < kRows; ++i) {
    services.push_back("svc_" + std::to_string(random.Skewed(30)));
    statuses.push_back(random.Bernoulli(0.02) ? 500 : 200);
    times.push_back(1400000000 + i / 100);
  }
  auto ratio = [](uint64_t raw, const EncodedColumn& enc) {
    return static_cast<double>(raw) /
           static_cast<double>(enc.dict.size() + enc.data.size());
  };
  uint64_t raw_strings = 0;
  for (const auto& s : services) raw_strings += s.size() + 8;
  EXPECT_GT(ratio(raw_strings, EncodeString(services)), 10.0);
  EXPECT_GT(ratio(kRows * 8, EncodeInt64(statuses)), 10.0);
  EXPECT_GT(ratio(kRows * 8, EncodeInt64(times)), 10.0);
}

}  // namespace
}  // namespace scuba
