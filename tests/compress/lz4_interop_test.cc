// Interop: our from-scratch LZ4 block codec must speak the SAME format as
// the reference liblz4. Both directions are cross-validated against the
// system library (loaded via dlopen so no headers are required); if the
// library is absent the tests skip.

#include <dlfcn.h>
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "compress/lz4.h"
#include "util/random.h"

namespace scuba {
namespace {

using Lz4CompressFn = int (*)(const char*, char*, int, int);
using Lz4DecompressFn = int (*)(const char*, char*, int, int);

struct ReferenceLz4 {
  void* handle = nullptr;
  Lz4CompressFn compress = nullptr;
  Lz4DecompressFn decompress = nullptr;
};

const ReferenceLz4& Reference() {
  static const ReferenceLz4& ref = *[] {
    auto* r = new ReferenceLz4();
    r->handle = dlopen("liblz4.so.1", RTLD_NOW);
    if (r->handle != nullptr) {
      r->compress = reinterpret_cast<Lz4CompressFn>(
          dlsym(r->handle, "LZ4_compress_default"));
      r->decompress = reinterpret_cast<Lz4DecompressFn>(
          dlsym(r->handle, "LZ4_decompress_safe"));
    }
    return r;
  }();
  return ref;
}

bool HaveReference() {
  return Reference().compress != nullptr && Reference().decompress != nullptr;
}

std::vector<std::string> Corpus() {
  std::vector<std::string> inputs;
  inputs.emplace_back();                       // empty
  inputs.emplace_back("a");                    // tiny literal
  inputs.emplace_back(100000, 'z');            // long run
  {
    std::string phrases;
    for (int i = 0; i < 3000; ++i) phrases += "GET /api/v2/users 200 OK ";
    inputs.push_back(std::move(phrases));      // repeated phrase
  }
  {
    std::string abc;
    for (int i = 0; i < 50000; ++i) abc.push_back("abc"[i % 3]);
    inputs.push_back(std::move(abc));          // overlapping matches
  }
  {
    Random random(41);
    std::string noise;
    for (int i = 0; i < 65536; ++i) {
      noise.push_back(static_cast<char>(random.Next() & 0xFF));
    }
    inputs.push_back(std::move(noise));        // incompressible
  }
  {
    Random random(43);
    std::string mixed;
    while (mixed.size() < 200000) {
      if (random.Bernoulli(0.6)) {
        mixed.append(1 + random.Uniform(100),
                     static_cast<char>('a' + random.Uniform(26)));
      } else {
        for (size_t i = 0; i < 1 + random.Uniform(40); ++i) {
          mixed.push_back(static_cast<char>(random.Next() & 0xFF));
        }
      }
    }
    inputs.push_back(std::move(mixed));        // mixed entropy
  }
  return inputs;
}

TEST(Lz4InteropTest, ReferenceDecodesOurOutput) {
  if (!HaveReference()) GTEST_SKIP() << "liblz4.so.1 not available";
  for (const std::string& input : Corpus()) {
    ByteBuffer ours;
    lz4::Compress(Slice(input), &ours);
    if (input.empty()) continue;  // reference rejects zero-size dst

    std::string decoded(input.size(), '\0');
    int n = Reference().decompress(
        reinterpret_cast<const char*>(ours.data()), decoded.data(),
        static_cast<int>(ours.size()), static_cast<int>(decoded.size()));
    ASSERT_EQ(n, static_cast<int>(input.size()))
        << "reference rejected our block (input size " << input.size()
        << ")";
    EXPECT_EQ(decoded, input);
  }
}

TEST(Lz4InteropTest, WeDecodeReferenceOutput) {
  if (!HaveReference()) GTEST_SKIP() << "liblz4.so.1 not available";
  for (const std::string& input : Corpus()) {
    if (input.empty()) continue;
    std::vector<char> compressed(lz4::CompressBound(input.size()));
    int n = Reference().compress(input.data(), compressed.data(),
                                 static_cast<int>(input.size()),
                                 static_cast<int>(compressed.size()));
    ASSERT_GT(n, 0);

    std::string decoded(input.size(), '\0');
    Status s = lz4::Decompress(
        Slice(compressed.data(), static_cast<size_t>(n)),
        reinterpret_cast<uint8_t*>(decoded.data()), decoded.size());
    ASSERT_TRUE(s.ok()) << s.ToString() << " (input size " << input.size()
                        << ")";
    EXPECT_EQ(decoded, input);
  }
}

TEST(Lz4InteropTest, CompressionRatiosAreComparable) {
  if (!HaveReference()) GTEST_SKIP() << "liblz4.so.1 not available";
  // Our greedy matcher should land within 2x of the reference's output
  // size on compressible data (same format, simpler heuristics).
  std::string input;
  for (int i = 0; i < 5000; ++i) {
    input += "svc_" + std::to_string(i % 37) + " GET /api 200 12ms\n";
  }
  ByteBuffer ours;
  lz4::Compress(Slice(input), &ours);
  std::vector<char> theirs(lz4::CompressBound(input.size()));
  int n = Reference().compress(input.data(), theirs.data(),
                               static_cast<int>(input.size()),
                               static_cast<int>(theirs.size()));
  ASSERT_GT(n, 0);
  EXPECT_LT(ours.size(), static_cast<size_t>(n) * 2);
  EXPECT_LT(ours.size(), input.size() / 3);
}

}  // namespace
}  // namespace scuba
