#include "compress/lz4.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/random.h"

namespace scuba {
namespace {

std::string RoundTrip(const std::string& input) {
  ByteBuffer compressed;
  lz4::Compress(Slice(input), &compressed);
  std::string output(input.size(), '\0');
  Status s = lz4::Decompress(compressed.AsSlice(),
                             reinterpret_cast<uint8_t*>(output.data()),
                             output.size());
  EXPECT_TRUE(s.ok()) << s.ToString();
  return output;
}

TEST(Lz4Test, EmptyInput) { EXPECT_EQ(RoundTrip(""), ""); }

TEST(Lz4Test, TinyInputsAreLiteralOnly) {
  for (const std::string& s : {std::string("a"), std::string("abc"),
                               std::string("0123456789")}) {
    EXPECT_EQ(RoundTrip(s), s);
  }
}

TEST(Lz4Test, HighlyRepetitiveDataCompressesHard) {
  std::string input(100000, 'z');
  ByteBuffer compressed;
  lz4::Compress(Slice(input), &compressed);
  EXPECT_LT(compressed.size(), input.size() / 100);
  EXPECT_EQ(RoundTrip(input), input);
}

TEST(Lz4Test, RepeatedPhraseCompresses) {
  std::string input;
  for (int i = 0; i < 2000; ++i) input += "GET /api/v2/users 200 OK ";
  ByteBuffer compressed;
  lz4::Compress(Slice(input), &compressed);
  EXPECT_LT(compressed.size(), input.size() / 5);
  EXPECT_EQ(RoundTrip(input), input);
}

TEST(Lz4Test, IncompressibleDataRoundTrips) {
  Random random(3);
  std::string input;
  input.reserve(65536);
  for (int i = 0; i < 65536; ++i) {
    input.push_back(static_cast<char>(random.Next() & 0xFF));
  }
  EXPECT_EQ(RoundTrip(input), input);
}

TEST(Lz4Test, CompressBoundHolds) {
  Random random(5);
  for (size_t n : {0u, 1u, 100u, 10000u}) {
    std::string input;
    for (size_t i = 0; i < n; ++i) {
      input.push_back(static_cast<char>(random.Next() & 0xFF));
    }
    ByteBuffer compressed;
    lz4::Compress(Slice(input), &compressed);
    EXPECT_LE(compressed.size(), lz4::CompressBound(n)) << n;
  }
}

TEST(Lz4Test, OverlappingMatchReplication) {
  // "abcabcabc..." exercises offset < match length (byte-wise replication).
  std::string input;
  for (int i = 0; i < 10000; ++i) input.push_back("abc"[i % 3]);
  EXPECT_EQ(RoundTrip(input), input);
}

TEST(Lz4Test, WrongDestSizeIsCorruption) {
  std::string input(1000, 'q');
  ByteBuffer compressed;
  lz4::Compress(Slice(input), &compressed);
  std::vector<uint8_t> dst(999);
  Status s = lz4::Decompress(compressed.AsSlice(), dst.data(), dst.size());
  EXPECT_TRUE(s.IsCorruption());
}

TEST(Lz4Test, TruncatedInputIsCorruption) {
  std::string input;
  for (int i = 0; i < 1000; ++i) input += "pattern";
  ByteBuffer compressed;
  lz4::Compress(Slice(input), &compressed);
  std::vector<uint8_t> dst(input.size());
  for (size_t cut : {1u, 2u, 5u}) {
    ASSERT_LT(cut, compressed.size());
    Status s = lz4::Decompress(
        Slice(compressed.data(), compressed.size() - cut), dst.data(),
        dst.size());
    EXPECT_FALSE(s.ok()) << "cut " << cut;
  }
}

TEST(Lz4Test, GarbageInputDoesNotCrash) {
  Random random(17);
  std::vector<uint8_t> dst(4096);
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage;
    size_t n = 1 + random.Uniform(200);
    for (size_t i = 0; i < n; ++i) {
      garbage.push_back(static_cast<char>(random.Next() & 0xFF));
    }
    // Must return (any status) without crashing or overflowing dst.
    lz4::Decompress(Slice(garbage), dst.data(), dst.size()).ok();
  }
}

// Property sweep: mixtures of run-lengths and randomness at many sizes.
class Lz4RoundTripTest : public ::testing::TestWithParam<size_t> {};

TEST_P(Lz4RoundTripTest, MixedContentRoundTrips) {
  size_t n = GetParam();
  Random random(n + 1);
  std::string input;
  input.reserve(n);
  while (input.size() < n) {
    if (random.Bernoulli(0.5)) {
      size_t run = 1 + random.Uniform(64);
      char c = static_cast<char>('a' + random.Uniform(26));
      input.append(std::min(run, n - input.size()), c);
    } else {
      size_t run = 1 + random.Uniform(32);
      for (size_t i = 0; i < run && input.size() < n; ++i) {
        input.push_back(static_cast<char>(random.Next() & 0xFF));
      }
    }
  }
  EXPECT_EQ(RoundTrip(input), input);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Lz4RoundTripTest,
                         ::testing::Values(1, 12, 13, 16, 17, 64, 100, 1000,
                                           4096, 65535, 65536, 65537, 200000,
                                           1 << 20));

}  // namespace
}  // namespace scuba
