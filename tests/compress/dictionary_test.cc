#include "compress/dictionary.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace scuba {
namespace {

TEST(DictionaryTest, StringEncodingFirstOccurrenceOrder) {
  std::vector<std::string> values = {"b", "a", "b", "c", "a"};
  std::vector<std::string> dict;
  std::vector<uint64_t> indexes = dictionary::EncodeStrings(values, &dict);
  EXPECT_EQ(dict, (std::vector<std::string>{"b", "a", "c"}));
  EXPECT_EQ(indexes, (std::vector<uint64_t>{0, 1, 0, 2, 1}));
}

TEST(DictionaryTest, IntEncoding) {
  std::vector<int64_t> values = {500, 200, 200, 500, 404};
  std::vector<int64_t> dict;
  std::vector<uint64_t> indexes = dictionary::EncodeInts(values, &dict);
  EXPECT_EQ(dict, (std::vector<int64_t>{500, 200, 404}));
  EXPECT_EQ(indexes, (std::vector<uint64_t>{0, 1, 1, 0, 2}));
}

TEST(DictionaryTest, StringDictSerializationRoundTrip) {
  std::vector<std::string> dict = {"", "hello", std::string(1000, 'x'),
                                   std::string("with\0null", 9)};
  ByteBuffer buf;
  dictionary::SerializeStringDict(dict, &buf);
  std::vector<std::string> parsed;
  ASSERT_TRUE(dictionary::ParseStringDict(buf.AsSlice(), &parsed).ok());
  EXPECT_EQ(parsed, dict);
}

TEST(DictionaryTest, IntDictSerializationRoundTrip) {
  std::vector<int64_t> dict = {0, -1, 1, INT64_MIN, INT64_MAX};
  ByteBuffer buf;
  dictionary::SerializeIntDict(dict, &buf);
  std::vector<int64_t> parsed;
  ASSERT_TRUE(dictionary::ParseIntDict(buf.AsSlice(), &parsed).ok());
  EXPECT_EQ(parsed, dict);
}

TEST(DictionaryTest, TruncatedStringDictIsCorruption) {
  std::vector<std::string> dict = {"hello", "world"};
  ByteBuffer buf;
  dictionary::SerializeStringDict(dict, &buf);
  std::vector<std::string> parsed;
  Status s = dictionary::ParseStringDict(
      Slice(buf.data(), buf.size() - 3), &parsed);
  EXPECT_TRUE(s.IsCorruption());
}

TEST(DictionaryTest, EmptyDictRoundTrips) {
  ByteBuffer buf;
  dictionary::SerializeStringDict({}, &buf);
  std::vector<std::string> parsed = {"stale"};
  ASSERT_TRUE(dictionary::ParseStringDict(buf.AsSlice(), &parsed).ok());
  EXPECT_TRUE(parsed.empty());
}

TEST(DictionaryTest, CountDistinctExactBelowLimit) {
  std::vector<std::string> values = {"a", "b", "a", "c", "b"};
  EXPECT_EQ(dictionary::CountDistinct(values, 10), 3u);
  std::vector<int64_t> ints = {1, 1, 2, 3, 3, 3};
  EXPECT_EQ(dictionary::CountDistinct(ints, 10), 3u);
}

TEST(DictionaryTest, CountDistinctStopsEarlyPastLimit) {
  std::vector<int64_t> values;
  for (int64_t i = 0; i < 1000; ++i) values.push_back(i);
  EXPECT_EQ(dictionary::CountDistinct(values, 5), 6u);  // limit + 1
}

}  // namespace
}  // namespace scuba
