#include "compress/delta.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "util/random.h"

namespace scuba {
namespace {

TEST(DeltaTest, EncodeProducesDifferences) {
  std::vector<int64_t> values = {100, 105, 103, 110};
  delta::Encode(&values);
  EXPECT_EQ(values, (std::vector<int64_t>{100, 5, -2, 7}));
}

TEST(DeltaTest, DecodeInvertsEncode) {
  std::vector<int64_t> values = {100, 105, 103, 110};
  std::vector<int64_t> original = values;
  delta::Encode(&values);
  delta::Decode(&values);
  EXPECT_EQ(values, original);
}

TEST(DeltaTest, EmptyAndSingleton) {
  std::vector<int64_t> empty;
  delta::Encode(&empty);
  delta::Decode(&empty);
  EXPECT_TRUE(empty.empty());

  std::vector<int64_t> one = {42};
  delta::Encode(&one);
  EXPECT_EQ(one, std::vector<int64_t>{42});
  delta::Decode(&one);
  EXPECT_EQ(one, std::vector<int64_t>{42});
}

TEST(DeltaTest, ExtremeValuesWrapCorrectly) {
  std::vector<int64_t> values = {std::numeric_limits<int64_t>::min(),
                                 std::numeric_limits<int64_t>::max(),
                                 0,
                                 std::numeric_limits<int64_t>::min()};
  std::vector<int64_t> original = values;
  delta::Encode(&values);
  delta::Decode(&values);
  EXPECT_EQ(values, original);
}

TEST(DeltaTest, ChronologicalTimestampsGiveTinyDeltas) {
  std::vector<int64_t> times;
  for (int i = 0; i < 1000; ++i) times.push_back(1400000000 + i / 3);
  delta::Encode(&times);
  for (size_t i = 1; i < times.size(); ++i) {
    EXPECT_GE(times[i], 0);
    EXPECT_LE(times[i], 1);
  }
}

TEST(DeltaTest, RandomRoundTrip) {
  Random random(77);
  std::vector<int64_t> values;
  for (int i = 0; i < 10000; ++i) {
    values.push_back(static_cast<int64_t>(random.Next()));
  }
  std::vector<int64_t> original = values;
  delta::Encode(&values);
  delta::Decode(&values);
  EXPECT_EQ(values, original);
}

TEST(ZigZagAllTest, RoundTrip) {
  std::vector<int64_t> values = {0, -1, 1, -1000, 1000,
                                 std::numeric_limits<int64_t>::min(),
                                 std::numeric_limits<int64_t>::max()};
  EXPECT_EQ(delta::UnZigZagAll(delta::ZigZagAll(values)), values);
}

TEST(ZigZagAllTest, SmallMagnitudesStaySmall) {
  std::vector<int64_t> values = {-3, -2, -1, 0, 1, 2, 3};
  std::vector<uint64_t> zz = delta::ZigZagAll(values);
  for (uint64_t v : zz) EXPECT_LE(v, 6u);
}

}  // namespace
}  // namespace scuba
