#include "compress/delta.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "util/random.h"

namespace scuba {
namespace {

TEST(DeltaTest, EncodeProducesDifferences) {
  std::vector<int64_t> values = {100, 105, 103, 110};
  delta::Encode(&values);
  EXPECT_EQ(values, (std::vector<int64_t>{100, 5, -2, 7}));
}

TEST(DeltaTest, DecodeInvertsEncode) {
  std::vector<int64_t> values = {100, 105, 103, 110};
  std::vector<int64_t> original = values;
  delta::Encode(&values);
  delta::Decode(&values);
  EXPECT_EQ(values, original);
}

TEST(DeltaTest, EmptyAndSingleton) {
  std::vector<int64_t> empty;
  delta::Encode(&empty);
  delta::Decode(&empty);
  EXPECT_TRUE(empty.empty());

  std::vector<int64_t> one = {42};
  delta::Encode(&one);
  EXPECT_EQ(one, std::vector<int64_t>{42});
  delta::Decode(&one);
  EXPECT_EQ(one, std::vector<int64_t>{42});
}

TEST(DeltaTest, ExtremeValuesWrapCorrectly) {
  std::vector<int64_t> values = {std::numeric_limits<int64_t>::min(),
                                 std::numeric_limits<int64_t>::max(),
                                 0,
                                 std::numeric_limits<int64_t>::min()};
  std::vector<int64_t> original = values;
  delta::Encode(&values);
  delta::Decode(&values);
  EXPECT_EQ(values, original);
}

TEST(DeltaTest, ChronologicalTimestampsGiveTinyDeltas) {
  std::vector<int64_t> times;
  for (int i = 0; i < 1000; ++i) times.push_back(1400000000 + i / 3);
  delta::Encode(&times);
  for (size_t i = 1; i < times.size(); ++i) {
    EXPECT_GE(times[i], 0);
    EXPECT_LE(times[i], 1);
  }
}

TEST(DeltaTest, RandomRoundTrip) {
  Random random(77);
  std::vector<int64_t> values;
  for (int i = 0; i < 10000; ++i) {
    values.push_back(static_cast<int64_t>(random.Next()));
  }
  std::vector<int64_t> original = values;
  delta::Encode(&values);
  delta::Decode(&values);
  EXPECT_EQ(values, original);
}

TEST(ZigZagAllTest, RoundTrip) {
  std::vector<int64_t> values = {0, -1, 1, -1000, 1000,
                                 std::numeric_limits<int64_t>::min(),
                                 std::numeric_limits<int64_t>::max()};
  EXPECT_EQ(delta::UnZigZagAll(delta::ZigZagAll(values)), values);
}

TEST(ZigZagAllTest, SmallMagnitudesStaySmall) {
  std::vector<int64_t> values = {-3, -2, -1, 0, 1, 2, 3};
  std::vector<uint64_t> zz = delta::ZigZagAll(values);
  for (uint64_t v : zz) EXPECT_LE(v, 6u);
}

std::vector<int64_t> MiniBlockRoundTrip(const std::vector<int64_t>& values) {
  ByteBuffer buf;
  delta::EncodeMiniBlocks(values, &buf);
  std::vector<int64_t> out;
  Status s = delta::DecodeMiniBlocks(buf.AsSlice(), values.size(), &out);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return out;
}

TEST(MiniBlockTest, RoundTripAtBoundaryCounts) {
  // One short block, exactly one block, one block + 1, several blocks ± 1.
  for (size_t n : {1u, 2u, 127u, 128u, 129u, 255u, 256u, 257u, 1000u}) {
    std::vector<int64_t> values;
    for (size_t i = 0; i < n; ++i) {
      values.push_back(1400000000 + static_cast<int64_t>(i) * 3 -
                       static_cast<int64_t>(i % 7));
    }
    EXPECT_EQ(MiniBlockRoundTrip(values), values) << "n=" << n;
  }
}

TEST(MiniBlockTest, ExtremeValuesRoundTrip) {
  std::vector<int64_t> values = {std::numeric_limits<int64_t>::min(),
                                 std::numeric_limits<int64_t>::max(),
                                 0,
                                 -1,
                                 1,
                                 std::numeric_limits<int64_t>::min()};
  EXPECT_EQ(MiniBlockRoundTrip(values), values);
}

TEST(MiniBlockTest, RandomRoundTrip) {
  Random random(99);
  std::vector<int64_t> values;
  for (int i = 0; i < 5000; ++i) {
    values.push_back(static_cast<int64_t>(random.Next()));
  }
  EXPECT_EQ(MiniBlockRoundTrip(values), values);
}

TEST(MiniBlockTest, DirectoryBoundsAreExact) {
  std::vector<int64_t> values;
  for (int i = 0; i < 400; ++i) {
    values.push_back((i / delta::kMiniBlockRows) * 1000 + (i % 50) - 25);
  }
  ByteBuffer buf;
  delta::EncodeMiniBlocks(values, &buf);
  std::vector<delta::MiniBlock> dir;
  Slice payload;
  ASSERT_TRUE(
      delta::ParseMiniBlocks(buf.AsSlice(), values.size(), &dir, &payload)
          .ok());
  ASSERT_EQ(dir.size(), (values.size() + delta::kMiniBlockRows - 1) /
                            delta::kMiniBlockRows);
  size_t covered = 0;
  for (const delta::MiniBlock& mb : dir) {
    EXPECT_EQ(mb.row_begin, covered);
    covered += mb.rows;
    int64_t mn = values[mb.row_begin];
    int64_t mx = mn;
    for (size_t i = 0; i < mb.rows; ++i) {
      mn = std::min(mn, values[mb.row_begin + i]);
      mx = std::max(mx, values[mb.row_begin + i]);
    }
    EXPECT_EQ(mb.first, values[mb.row_begin]);
    EXPECT_EQ(mb.min, mn);
    EXPECT_EQ(mb.max, mx);
  }
  EXPECT_EQ(covered, values.size());
}

TEST(MiniBlockTest, SingleBlockDecode) {
  std::vector<int64_t> values;
  for (int i = 0; i < 300; ++i) values.push_back(i * i);
  ByteBuffer buf;
  delta::EncodeMiniBlocks(values, &buf);
  std::vector<delta::MiniBlock> dir;
  Slice payload;
  ASSERT_TRUE(
      delta::ParseMiniBlocks(buf.AsSlice(), values.size(), &dir, &payload)
          .ok());
  // Decode only the middle block; neighbours stay untouched.
  const delta::MiniBlock& mb = dir[1];
  std::vector<int64_t> out(mb.rows, 0);
  ASSERT_TRUE(delta::DecodeMiniBlock(mb, payload, out.data()).ok());
  for (size_t i = 0; i < mb.rows; ++i) {
    EXPECT_EQ(out[i], values[mb.row_begin + i]);
  }
}

TEST(MiniBlockTest, TruncatedStreamIsCorruption) {
  std::vector<int64_t> values;
  for (int i = 0; i < 1000; ++i) values.push_back(i * 977);
  ByteBuffer buf;
  delta::EncodeMiniBlocks(values, &buf);
  std::vector<int64_t> out;
  Status s = delta::DecodeMiniBlocks(
      Slice(buf.data(), buf.size() / 2), values.size(), &out);
  EXPECT_FALSE(s.ok());
}

}  // namespace
}  // namespace scuba
