#include "compress/bitpack.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/random.h"

namespace scuba {
namespace {

TEST(BitpackTest, RequiredWidth) {
  EXPECT_EQ(bitpack::RequiredWidth({}), 0);
  EXPECT_EQ(bitpack::RequiredWidth({0, 0}), 0);
  EXPECT_EQ(bitpack::RequiredWidth({1}), 1);
  EXPECT_EQ(bitpack::RequiredWidth({7}), 3);
  EXPECT_EQ(bitpack::RequiredWidth({8}), 4);
  EXPECT_EQ(bitpack::RequiredWidth({1, 255}), 8);
  EXPECT_EQ(bitpack::RequiredWidth({~0ull}), 64);
}

TEST(BitpackTest, WidthZeroDecodesToZeros) {
  ByteBuffer buf;
  bitpack::Pack({0, 0, 0}, 0, &buf);
  EXPECT_EQ(buf.size(), 0u);
  std::vector<uint64_t> out;
  ASSERT_TRUE(bitpack::Unpack(buf.AsSlice(), 0, 3, &out).ok());
  EXPECT_EQ(out, (std::vector<uint64_t>{0, 0, 0}));
}

TEST(BitpackTest, PackedSizeIsExact) {
  std::vector<uint64_t> values(100, 5);
  ByteBuffer buf;
  bitpack::Pack(values, 3, &buf);
  EXPECT_EQ(buf.size(), bitpack::PackedSize(100, 3));
  EXPECT_EQ(buf.size(), (100 * 3 + 7) / 8u);
}

TEST(BitpackTest, ShortInputIsCorruption) {
  std::vector<uint64_t> out;
  Status s = bitpack::Unpack(Slice("ab", 2), 8, 3, &out);
  EXPECT_TRUE(s.IsCorruption());
}

// Property sweep over every width 1..64.
class BitpackWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(BitpackWidthTest, RandomRoundTrip) {
  int width = GetParam();
  Random random(static_cast<uint64_t>(width) * 31 + 1);
  uint64_t mask = width == 64 ? ~0ull : ((1ull << width) - 1);

  for (size_t count : {1u, 2u, 7u, 8u, 9u, 63u, 64u, 65u, 1000u}) {
    std::vector<uint64_t> values;
    values.reserve(count);
    for (size_t i = 0; i < count; ++i) values.push_back(random.Next() & mask);
    // Ensure the max width value appears so RequiredWidth == width often.
    values[0] = mask;

    ByteBuffer buf;
    bitpack::Pack(values, width, &buf);
    ASSERT_EQ(buf.size(), bitpack::PackedSize(count, width));

    std::vector<uint64_t> out;
    ASSERT_TRUE(bitpack::Unpack(buf.AsSlice(), width, count, &out).ok())
        << "width " << width << " count " << count;
    EXPECT_EQ(out, values) << "width " << width << " count " << count;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, BitpackWidthTest,
                         ::testing::Range(1, 65));

TEST(BitpackTest, RoundTripWithTrailingDataInSlice) {
  std::vector<uint64_t> values = {1, 2, 3, 4, 5};
  ByteBuffer buf;
  bitpack::Pack(values, 3, &buf);
  buf.Append("extra", 5);  // unpack must ignore trailing bytes
  std::vector<uint64_t> out;
  ASSERT_TRUE(bitpack::Unpack(buf.AsSlice(), 3, 5, &out).ok());
  EXPECT_EQ(out, values);
}

}  // namespace
}  // namespace scuba
