// Adversarial property sweeps over the column codec: every value pattern
// a production log could throw at the chain chooser must round-trip,
// whatever chain it picks.

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "compress/column_codec.h"
#include "util/random.h"

namespace scuba {
namespace {

using column_codec::DecodeInt64;
using column_codec::DecodeString;
using column_codec::EncodedColumn;
using column_codec::EncodeInt64;
using column_codec::EncodeString;

enum class IntPattern {
  kConstant,
  kSortedAscending,
  kSortedDescending,
  kAlternatingExtremes,
  kSmallRandomWalk,
  kPowersOfTwo,
  kAllBitWidths,
  kSparseZeroes,
};

std::vector<int64_t> MakeInts(IntPattern pattern, size_t n, uint64_t seed) {
  Random random(seed);
  std::vector<int64_t> values;
  values.reserve(n);
  int64_t walk = 0;
  for (size_t i = 0; i < n; ++i) {
    switch (pattern) {
      case IntPattern::kConstant:
        values.push_back(42);
        break;
      case IntPattern::kSortedAscending:
        values.push_back(static_cast<int64_t>(i) * 1000);
        break;
      case IntPattern::kSortedDescending:
        values.push_back(static_cast<int64_t>(n - i) * 1000);
        break;
      case IntPattern::kAlternatingExtremes:
        values.push_back(i % 2 == 0 ? std::numeric_limits<int64_t>::min()
                                    : std::numeric_limits<int64_t>::max());
        break;
      case IntPattern::kSmallRandomWalk:
        walk += random.UniformRange(-3, 3);
        values.push_back(walk);
        break;
      case IntPattern::kPowersOfTwo:
        values.push_back(int64_t{1} << (i % 63));
        break;
      case IntPattern::kAllBitWidths:
        values.push_back(static_cast<int64_t>(random.Next() >> (i % 64)));
        break;
      case IntPattern::kSparseZeroes:
        values.push_back(random.Bernoulli(0.95)
                             ? 0
                             : static_cast<int64_t>(random.Next()));
        break;
    }
  }
  return values;
}

class IntCodecPropertyTest
    : public ::testing::TestWithParam<std::tuple<IntPattern, size_t>> {};

TEST_P(IntCodecPropertyTest, RoundTrips) {
  auto [pattern, n] = GetParam();
  std::vector<int64_t> values = MakeInts(pattern, n, n * 7 + 1);
  EncodedColumn enc = EncodeInt64(values);
  std::vector<int64_t> out;
  Status s = DecodeInt64(enc.chain, enc.dict.AsSlice(), enc.data.AsSlice(),
                         values.size(), &out);
  ASSERT_TRUE(s.ok()) << s.ToString() << " chain "
                      << column_codec::ChainToString(enc.chain);
  EXPECT_EQ(out, values);
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, IntCodecPropertyTest,
    ::testing::Combine(
        ::testing::Values(IntPattern::kConstant, IntPattern::kSortedAscending,
                          IntPattern::kSortedDescending,
                          IntPattern::kAlternatingExtremes,
                          IntPattern::kSmallRandomWalk,
                          IntPattern::kPowersOfTwo,
                          IntPattern::kAllBitWidths,
                          IntPattern::kSparseZeroes),
        ::testing::Values(1u, 2u, 15u, 16u, 17u, 1000u, 65536u)));

enum class StringPattern {
  kEmptyStrings,
  kSharedPrefixes,
  kBinaryBytes,
  kLongValues,
  kTwoDistinct,
  kAllDistinct,
};

std::vector<std::string> MakeStrings(StringPattern pattern, size_t n,
                                     uint64_t seed) {
  Random random(seed);
  std::vector<std::string> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    switch (pattern) {
      case StringPattern::kEmptyStrings:
        values.emplace_back();
        break;
      case StringPattern::kSharedPrefixes:
        values.push_back("/var/facebook/logs/service/" +
                         std::to_string(random.Uniform(30)));
        break;
      case StringPattern::kBinaryBytes: {
        std::string s;
        for (size_t b = 0; b < 1 + random.Uniform(20); ++b) {
          s.push_back(static_cast<char>(random.Next() & 0xFF));
        }
        values.push_back(std::move(s));
        break;
      }
      case StringPattern::kLongValues:
        values.push_back(std::string(1000 + random.Uniform(2000),
                                     static_cast<char>('a' + i % 26)));
        break;
      case StringPattern::kTwoDistinct:
        values.push_back(i % 2 == 0 ? "ok" : "error");
        break;
      case StringPattern::kAllDistinct:
        values.push_back("unique_" + std::to_string(i) + "_" +
                         std::to_string(random.Next()));
        break;
    }
  }
  return values;
}

class StringCodecPropertyTest
    : public ::testing::TestWithParam<std::tuple<StringPattern, size_t>> {};

TEST_P(StringCodecPropertyTest, RoundTrips) {
  auto [pattern, n] = GetParam();
  std::vector<std::string> values = MakeStrings(pattern, n, n * 13 + 5);
  EncodedColumn enc = EncodeString(values);
  std::vector<std::string> out;
  Status s = DecodeString(enc.chain, enc.dict.AsSlice(), enc.data.AsSlice(),
                          values.size(), &out);
  ASSERT_TRUE(s.ok()) << s.ToString() << " chain "
                      << column_codec::ChainToString(enc.chain);
  EXPECT_EQ(out, values);
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, StringCodecPropertyTest,
    ::testing::Combine(::testing::Values(StringPattern::kEmptyStrings,
                                         StringPattern::kSharedPrefixes,
                                         StringPattern::kBinaryBytes,
                                         StringPattern::kLongValues,
                                         StringPattern::kTwoDistinct,
                                         StringPattern::kAllDistinct),
                       ::testing::Values(1u, 16u, 1000u, 10000u)));

// Truncation fuzz: decoding any prefix of a valid encoding must fail
// cleanly (no crash, no over-read) for every chain the chooser emits.
TEST(CodecTruncationFuzz, PrefixesFailCleanly) {
  std::vector<std::vector<int64_t>> corpora = {
      MakeInts(IntPattern::kSmallRandomWalk, 5000, 1),
      MakeInts(IntPattern::kSparseZeroes, 5000, 2),
      MakeInts(IntPattern::kAllBitWidths, 5000, 3),
  };
  for (const auto& values : corpora) {
    EncodedColumn enc = EncodeInt64(values);
    for (size_t keep = 0; keep < enc.data.size();
         keep += 1 + enc.data.size() / 64) {
      std::vector<int64_t> out;
      Status s = DecodeInt64(enc.chain, enc.dict.AsSlice(),
                             Slice(enc.data.data(), keep), values.size(),
                             &out);
      EXPECT_FALSE(s.ok()) << "keep " << keep;
    }
  }
}

}  // namespace
}  // namespace scuba
